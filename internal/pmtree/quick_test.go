package pmtree

// Property-based tests (testing/quick): the tree is an EXACT metric
// index, so however it is built — bulk loaded in one shot, or bulk
// loaded over half the data with the rest inserted one at a time — the
// answers must be identical in distance (ids may swap across ties).
// Randomized configs sweep pivot counts and capacities.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func quickPoints(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		// Sprinkle duplicates so ties exist.
		if i > 0 && rng.Intn(10) == 0 {
			copy(p, out[rng.Intn(i)])
		}
		out[i] = p
	}
	return out
}

func TestQuickBuildVsIncremental(t *testing.T) {
	f := func(seed int64, pivSel, capSel, dimSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			NumPivots: int(pivSel % 7),    // 0..6 (0 = plain M-tree)
			Capacity:  4 + int(capSel%13), // 4..16
			PivotSeed: seed,
		}
		dim := 2 + int(dimSel%8) // 2..9
		n := 120
		data := quickPoints(rng, n, dim)

		full, err := Build(data, nil, cfg)
		if err != nil {
			t.Logf("full build: %v", err)
			return false
		}
		half, err := Build(data[:n/2], nil, cfg)
		if err != nil {
			t.Logf("half build: %v", err)
			return false
		}
		for i := n / 2; i < n; i++ {
			if err := half.Insert(data[i], int32(i)); err != nil {
				t.Logf("insert %d: %v", i, err)
				return false
			}
		}
		if full.Len() != half.Len() {
			return false
		}

		// KNN answers identical in distance up to ties.
		for qi := 0; qi < 4; qi++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			k := 1 + rng.Intn(12)
			a, err := full.KNNSearch(q, k)
			if err != nil {
				return false
			}
			b, err := half.KNNSearch(q, k)
			if err != nil {
				return false
			}
			if len(a) != len(b) {
				t.Logf("result lengths differ: %d vs %d", len(a), len(b))
				return false
			}
			for i := range a {
				if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
					t.Logf("rank %d: %v vs %v", i, a[i].Dist, b[i].Dist)
					return false
				}
			}
			// RangeSearch returns identical id sets (fixed radius).
			r := 0.5 + rng.Float64()*2
			ra, err := full.RangeSearch(q, r)
			if err != nil {
				return false
			}
			rb, err := half.RangeSearch(q, r)
			if err != nil {
				return false
			}
			if len(ra) != len(rb) {
				t.Logf("range sizes differ: %d vs %d", len(ra), len(rb))
				return false
			}
			for i := range ra {
				// Both are sorted by (Dist, ID), so equality is positional.
				if ra[i].ID != rb[i].ID || math.Abs(ra[i].Dist-rb[i].Dist) > 1e-9 {
					t.Logf("range mismatch at %d: %+v vs %+v", i, ra[i], rb[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPairEnumeratorMatchesBrute drives the self-join with random
// configs: the enumerated order must match brute force.
func TestQuickPairEnumeratorMatchesBrute(t *testing.T) {
	f := func(seed int64, pivSel, capSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			NumPivots: int(pivSel % 6),
			Capacity:  4 + int(capSel%13),
			PivotSeed: seed + 1,
		}
		data := quickPoints(rng, 60, 4)
		tree, err := Build(data, nil, cfg)
		if err != nil {
			return false
		}
		want := brutePairs(data)
		en := tree.NewPairEnumerator()
		for i := range want {
			c, ok := en.Next()
			if !ok {
				t.Logf("enumerator ended early at %d of %d", i, len(want))
				return false
			}
			if math.Abs(c.Dist-want[i].Dist) > 1e-9 {
				t.Logf("rank %d: %v vs brute %v", i, c.Dist, want[i].Dist)
				return false
			}
		}
		if _, ok := en.Next(); ok {
			t.Log("enumerator produced extra pairs")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
