package pmtree

import (
	"math"
	"sort"

	"repro/internal/heapq"
	"repro/internal/vec"
)

// This file implements the dual-branch self-join traversal behind
// closest-pair search (the journal extension of PM-LSH generalizes the
// tree-over-projections design from (c,k)-ANN to (c,k)-closest-pair
// search): a best-first enumeration of the unordered pairs of indexed
// points in nondecreasing order of their exact distance in the tree's
// (projected) space.
//
// The enumerator maintains a priority queue whose items are:
//
//   - node pairs (A, B): two subtrees, keyed by a lower bound on the
//     distance between any point below A and any point below B — the
//     M-tree ball bound max(0, d(RO_A, RO_B) − r_A − r_B) sharpened by
//     the hyper-ring gap max_i gap(HR_A[i], HR_B[i]);
//   - entry pairs (o_1, o_2): two leaf entries keyed by their exact
//     distance, computed when the leaf pair is expanded. The pivot
//     lower bound max_i |d(o_1, p_i) − d(o_2, p_i)| (free: leaf entries
//     precompute their pivot distances) pre-filters pairs that already
//     exceed the cutoff, and pairs whose exact distance exceeds it are
//     dropped instead of queued. Computing the exact distance eagerly
//     is deliberate: the tree's space is the low-dimensional projected
//     space, where one metric evaluation costs little more than the
//     pivot bound, and self-joins live or die by keeping the O(n²)
//     beyond-cutoff pairs out of the queue.
//
// Popping in bound order with ties broken toward the more refined item
// yields every pair at most once (each node has a unique parent, so an
// unordered pair of subtrees is generated from exactly one ancestor
// pair) and in exactly nondecreasing exact distance.
//
// Hot-path layout notes: heap items are 24 pointer-free bytes (node
// pair geometry lives in a side arena indexed by item.id1), so heap
// swaps neither trip GC write barriers nor copy large structs;
// zero-bound node pairs bypass the heap entirely (see stack); and each
// leaf pair is joined by a plane sweep over cached first-coordinate-
// sorted entry layouts (see leafJoin) instead of an O(capacity²) scan.
type PairEnumerator struct {
	t      *Tree
	t2     *Tree // nil for a self-join; the second tree of a bipartite join
	pq     heapq.Heap[pairItem]
	nodes  []nodePairArena // side arena for queued node pairs
	cutoff float64
	done   bool

	// joins caches each leaf's sweep-ready layout (entries sorted by
	// first coordinate, pivot distances gathered alongside), keyed by
	// the leaf's first entry row (stable and unique per leaf). A leaf
	// participates in many leaf pairs over one enumeration, so the sort
	// is paid once per leaf, not once per pair — and the lookup must be
	// an array index, not a map probe, at tens of thousands of pair
	// expansions. joins2 is the same cache for t2's leaves (bipartite
	// joins only; rows of the two trees live in separate stores, so the
	// keys cannot share one array).
	joins  []*leafJoin
	joins2 []*leafJoin

	// stack holds node pairs whose lower bound is zero. They sort
	// before every other item, so expanding them LIFO off a plain stack
	// preserves the emission order while skipping the heap's O(log n)
	// sift per push/pop — and on heavily overlapping trees they are the
	// majority of all node pairs.
	stack []pairItem

	// qdist counts this enumeration's metric evaluations — owned by
	// exactly one enumerator, so per-query closest-pair statistics stay
	// exact when queries overlap (the tree-wide atomics below are
	// shared).
	qdist int64

	// pending batches the tree's atomic statistics counters: a self-join
	// evaluates the metric millions of times, and paying an atomic
	// add per evaluation costs more than the 15-dimensional distance
	// itself. Flushed on every Next return.
	pendingDist  int64
	pendingNodes int64
}

// leafJoin is one leaf prepared for plane-sweep joining: entry data
// reordered ascending by first point coordinate, pivot distances
// contiguous (entry-major, stride = pivot count).
type leafJoin struct {
	c0  []float64
	piv []float64
	row []int32
	id  []int32
}

// PairCandidate is one pair produced by the enumerator and its exact
// distance in the tree's space. For a self-join the ids are two
// distinct indexed points with ID1 <= ID2; for a bipartite join ID1 is
// always an id of the receiver tree and ID2 an id of the other tree
// (the two id spaces are independent, so no ordering is imposed).
type PairCandidate struct {
	ID1, ID2 int32
	Dist     float64
}

// Item refinement kinds. Greater = more refined; on equal bounds the
// heap pops the most refined item first, so finished pairs surface
// before coarser items at the same bound trigger further expansion.
const (
	kindNodePair uint8 = iota
	kindExactPair
)

// pairRegion is one side of a node pair: a subtree plus the routing
// geometry that bounds it. The root has no routing entry; center == nil
// marks "unbounded" (lower bound 0 against anything). side says which
// tree the subtree belongs to (0 = e.t, 1 = e.t2) — always 0 for a
// self-join; in a bipartite join every node pair has one region per
// side, because expansion descends one side at a time starting from
// (root of t, root of t2).
type pairRegion struct {
	n      *node
	center []float64
	radius float64
	hr     []Interval
	side   uint8
}

type nodePairArena struct{ a, b pairRegion }

// pairItem is one queue element. For kindNodePair, id1 indexes the
// enumerator's node-pair arena; for kindExactPair, id1/id2 are the
// point ids and bound is the exact distance.
type pairItem struct {
	bound float64
	id1   int32
	id2   int32
	kind  uint8
}

// Less orders the queue by bound; on equal bounds the more refined
// item pops first, so finished pairs surface before coarser items at
// the same bound trigger further expansion (heapq.Heap element —
// container/heap would box every item in an interface, and the
// enumerator pushes one item per surviving candidate pair).
func (a pairItem) Less(b pairItem) bool {
	if a.bound != b.bound {
		return a.bound < b.bound
	}
	return a.kind > b.kind
}

// dist evaluates the metric, counting locally (see pending fields).
func (e *PairEnumerator) dist(a, b []float64) float64 {
	e.pendingDist++
	e.qdist++
	return vec.L2(a, b)
}

// DistComps returns the number of metric evaluations this enumeration
// has paid since it was created. The count is owned by the
// enumeration — it never includes work from other queries, however
// many run concurrently.
func (e *PairEnumerator) DistComps() int64 { return e.qdist }

// flushStats moves the batched counters into the tree's atomics.
func (e *PairEnumerator) flushStats() {
	if e.pendingDist > 0 {
		e.t.distCalcs.Add(e.pendingDist)
		e.pendingDist = 0
	}
	if e.pendingNodes > 0 {
		e.t.nodeAccesses.Add(e.pendingNodes)
		e.pendingNodes = 0
	}
}

// NewPairEnumerator starts a pair enumeration over the tree. The
// enumerator reads the tree without modifying it (beyond the shared
// statistics counters) but must not be used concurrently with Insert,
// like every query; concurrent enumerations and range/kNN queries are
// fine. A tree with fewer than two points enumerates nothing.
func (t *Tree) NewPairEnumerator() *PairEnumerator {
	e := &PairEnumerator{t: t, cutoff: math.Inf(1)}
	if t.count >= 2 {
		root := pairRegion{n: t.root, radius: math.Inf(1)}
		e.expand(root, root)
	}
	return e
}

// NewBipartitePairEnumerator starts a cross-tree pair enumeration: it
// yields every pair (x, y) with x indexed by the receiver and y by
// other, in nondecreasing order of their exact distance, each exactly
// once. Both trees must index points of the same dimension (they may
// use different pivots — the hyper-ring sharpening and the per-pivot
// leaf prefilter only apply within one pivot set, so cross-tree bounds
// fall back to the routing-ball bound alone). The candidate's ID1 is
// the receiver's id and ID2 the other tree's id; the two id spaces are
// independent. Statistics (DistComps, the tree-wide counters) accrue to
// the receiver. Either tree being empty enumerates nothing.
func (t *Tree) NewBipartitePairEnumerator(other *Tree) *PairEnumerator {
	e := &PairEnumerator{t: t, t2: other, cutoff: math.Inf(1)}
	if t.count >= 1 && other.count >= 1 {
		ra := pairRegion{n: t.root, radius: math.Inf(1), side: 0}
		rb := pairRegion{n: other.root, radius: math.Inf(1), side: 1}
		e.expand(ra, rb)
	}
	return e
}

// treeOf maps a region side to its tree.
func (e *PairEnumerator) treeOf(side uint8) *Tree {
	if side == 0 {
		return e.t
	}
	return e.t2
}

// SetCutoff caps the enumeration: pairs with distance above cutoff are
// never returned, which lets the traversal prune subtree pairs whose
// lower bound already exceeds it. The cutoff can only shrink; calls
// with a larger value are ignored. After Next returns false the
// enumeration is finished for good — every remaining pair (if any)
// exceeds the cutoff in force at that time.
func (e *PairEnumerator) SetCutoff(cutoff float64) {
	if cutoff < e.cutoff {
		e.cutoff = cutoff
	}
}

// Next returns the pair with the smallest exact distance not yet
// returned, or ok == false when no pair at or below the cutoff remains.
func (e *PairEnumerator) Next() (PairCandidate, bool) {
	if e.done {
		return PairCandidate{}, false
	}
	for {
		// Zero-bound node pairs sort before everything; drain them LIFO
		// before consulting the heap.
		if len(e.stack) > 0 {
			it := e.stack[len(e.stack)-1]
			e.stack = e.stack[:len(e.stack)-1]
			np := &e.nodes[it.id1]
			e.expand(np.a, np.b)
			continue
		}
		if e.pq.Len() == 0 {
			break
		}
		// The heap is popped in nondecreasing bound order, so a front
		// above the cutoff means everything left is above it too.
		if e.pq.Min().bound > e.cutoff {
			break
		}
		it := e.pq.Pop()
		if it.kind == kindExactPair {
			e.flushStats()
			return PairCandidate{ID1: it.id1, ID2: it.id2, Dist: it.bound}, true
		}
		np := &e.nodes[it.id1]
		e.expand(np.a, np.b)
	}
	e.done = true
	e.flushStats()
	return PairCandidate{}, false
}

// expand replaces the node pair (a, b) with finer-grained items.
// Descending one side at a time (the inner node with the larger radius)
// keeps bounds tight; a self pair must descend both sides at once so
// every unordered child pair — including child self pairs — is
// generated exactly once.
func (e *PairEnumerator) expand(a, b pairRegion) {
	e.pendingNodes++
	if a.n.leaf && b.n.leaf {
		e.expandLeafPair(a, b)
		return
	}
	if a.n == b.n {
		rt := a.n.routing
		for i := range rt {
			ri := regionOf(&rt[i], a.side)
			e.pushNodes(ri, ri)
			for j := i + 1; j < len(rt); j++ {
				e.pushNodes(ri, regionOf(&rt[j], a.side))
			}
		}
		return
	}
	// Distinct nodes: descend the inner one with the larger radius (a
	// leaf or smaller subtree stays whole so its bound keeps pruning).
	// The choice is a pure function of the two regions, so each node
	// pair is generated from exactly one ancestor pair — in the
	// bipartite case too, where the sides travel with the regions.
	if a.n.leaf || (!b.n.leaf && b.radius > a.radius) {
		a, b = b, a
	}
	for i := range a.n.routing {
		e.pushNodes(regionOf(&a.n.routing[i], a.side), b)
	}
}

// leafJoin returns (building and caching on first use) the leaf's
// sweep-ready layout.
func (e *PairEnumerator) leafJoin(n *node, side uint8) *leafJoin {
	t := e.treeOf(side)
	cache := &e.joins
	if side == 1 {
		cache = &e.joins2
	}
	if *cache == nil {
		*cache = make([]*leafJoin, t.points.Len())
	}
	key := n.entries[0].row
	if lj := (*cache)[key]; lj != nil {
		return lj
	}
	s := len(t.pivots)
	m := len(n.entries)
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return t.leafPoint(&n.entries[idx[a]])[0] < t.leafPoint(&n.entries[idx[b]])[0]
	})
	lj := &leafJoin{
		c0:  make([]float64, m),
		piv: make([]float64, 0, m*s),
		row: make([]int32, m),
		id:  make([]int32, m),
	}
	for i, at := range idx {
		en := &n.entries[at]
		lj.c0[i] = t.leafPoint(en)[0]
		lj.piv = append(lj.piv, en.pivotDist[:s]...)
		lj.row[i] = en.row
		lj.id[i] = en.id
	}
	(*cache)[key] = lj
	return lj
}

// expandLeafPair emits the qualifying entry pairs of two leaves (the
// nodes may be equal: the self-join case enumerates each unordered pair
// once) by a plane sweep over the first coordinate: with both leaves
// sorted by it, only pairs whose coordinate gap — a distance lower
// bound free of the radial concentration pivot distances suffer — is
// within the cutoff are touched at all. Survivors then reject on the
// per-pivot bounds (same-tree pairs only: the two trees of a bipartite
// join have independent pivot sets) and finally the exact squared
// distance.
func (e *PairEnumerator) expandLeafPair(ra, rb pairRegion) {
	na, nb := ra.n, rb.n
	// Deletions can leave leaves empty; they contribute no pairs (and
	// leafJoin keys off the first entry, so they must not reach it).
	if len(na.entries) == 0 || len(nb.entries) == 0 {
		return
	}
	a := e.leafJoin(na, ra.side)
	b := a
	if na != nb {
		b = e.leafJoin(nb, rb.side)
	}
	ta := e.treeOf(ra.side)
	tb := e.treeOf(rb.side)
	cross := ra.side != rb.side
	s := len(ta.pivots)
	cutoff := e.cutoff
	// Squared-space rejection with a rounding margin; survivors get the
	// exact linear check below, so boundary pairs (distance == cutoff)
	// are kept without paying a sqrt per rejected pair.
	cutoff2 := cutoff * cutoff * (1 + 1e-14)
	exact := int64(0)
	lo := 0
	for i := range a.c0 {
		c0 := a.c0[i]
		var jstart int
		if na == nb {
			jstart = i + 1 // sorted self-join: j > i covers each pair once
		} else {
			for lo < len(b.c0) && b.c0[lo] < c0-cutoff {
				lo++
			}
			jstart = lo
		}
		pa := a.piv[i*s : (i+1)*s]
		pt := ta.points.Row(int(a.row[i]))
	probe:
		for j := jstart; j < len(b.c0) && b.c0[j]-c0 <= cutoff; j++ {
			if !cross {
				off := j * s
				for p := 0; p < s; p++ {
					if d := pa[p] - b.piv[off+p]; d > cutoff || -d > cutoff {
						continue probe
					}
				}
			}
			exact++
			d2 := vec.SquaredL2(pt, tb.points.Row(int(b.row[j])))
			if d2 > cutoff2 {
				continue
			}
			d := math.Sqrt(d2)
			if d > cutoff {
				continue
			}
			id1, id2 := a.id[i], b.id[j]
			if cross {
				// Bipartite: ID1 is always e.t's id, ID2 always e.t2's
				// (the regions may have been swapped by expand).
				if ra.side == 1 {
					id1, id2 = id2, id1
				}
			} else if id2 < id1 {
				id1, id2 = id2, id1
			}
			e.pq.Push(pairItem{bound: d, kind: kindExactPair, id1: id1, id2: id2})
		}
	}
	e.pendingDist += exact
	e.qdist += exact
}

func regionOf(r *routingEntry, side uint8) pairRegion {
	return pairRegion{n: r.child, center: r.center, radius: r.radius, hr: r.hr, side: side}
}

func (e *PairEnumerator) pushNodes(a, b pairRegion) {
	bound := e.regionBound(a, b)
	if bound > e.cutoff {
		return
	}
	e.nodes = append(e.nodes, nodePairArena{a: a, b: b})
	it := pairItem{bound: bound, kind: kindNodePair, id1: int32(len(e.nodes) - 1)}
	if bound == 0 {
		e.stack = append(e.stack, it)
		return
	}
	e.pq.Push(it)
}

// regionBound lower-bounds the distance between any point below a and
// any point below b: the routing-ball bound sharpened by the per-pivot
// hyper-ring gaps (points below a subtree have pivot distances inside
// its rings, so disjoint rings keep the subtrees at least the gap
// apart). Ring sharpening requires one pivot set — regions from the
// two sides of a bipartite join keep the ball bound alone.
func (e *PairEnumerator) regionBound(a, b pairRegion) float64 {
	if a.n == b.n || a.center == nil || b.center == nil {
		return 0
	}
	lb := e.dist(a.center, b.center) - a.radius - b.radius
	if lb < 0 {
		lb = 0
	}
	if a.side == b.side {
		for i := range a.hr {
			if g := a.hr[i].Min - b.hr[i].Max; g > lb {
				lb = g
			}
			if g := b.hr[i].Min - a.hr[i].Max; g > lb {
				lb = g
			}
		}
	}
	return lb
}
