package pmtree

import (
	"math/rand"
	"testing"
)

// Deleting points must remove them from every query path while leaving
// the survivors' answers exact (range and kNN against brute force over
// the survivors), for both bulk-loaded and insertion-grown trees.
func TestDeleteRemovesFromQueries(t *testing.T) {
	data := randData(400, 6, 71)
	for _, grow := range []bool{false, true} {
		var tr *Tree
		var err error
		if grow {
			tr, err = New(6, Config{NumPivots: 3, PivotSeed: 72})
			if err != nil {
				t.Fatal(err)
			}
			// Pivotless insertion-grown tree (New has no data to pick
			// pivots from) exercises the s=0 delete path.
			for i, p := range data {
				if err := tr.Insert(p, int32(i)); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			tr, err = Build(data, nil, Config{NumPivots: 3, PivotSeed: 72})
			if err != nil {
				t.Fatal(err)
			}
		}

		rng := rand.New(rand.NewSource(73))
		alive := make(map[int32]bool, len(data))
		for i := range data {
			alive[int32(i)] = true
		}
		// Delete a random 40%.
		for _, id := range rng.Perm(len(data))[:160] {
			if err := tr.Delete(data[id], int32(id)); err != nil {
				t.Fatalf("grow=%v delete %d: %v", grow, id, err)
			}
			delete(alive, int32(id))
		}
		if tr.Len() != len(alive) {
			t.Fatalf("grow=%v: Len %d after deletes, want %d", grow, tr.Len(), len(alive))
		}

		survivors := make([][]float64, 0, len(alive))
		ids := make([]int32, 0, len(alive))
		for i, p := range data {
			if alive[int32(i)] {
				survivors = append(survivors, p)
				ids = append(ids, int32(i))
			}
		}
		for trial := 0; trial < 10; trial++ {
			q := data[rng.Intn(len(data))]
			want := bruteRange(survivors, q, 8)
			for i := range want {
				want[i].ID = ids[want[i].ID]
			}
			got, err := tr.RangeSearch(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResults(got, want) {
				t.Fatalf("grow=%v trial %d: range diverged from survivor brute force", grow, trial)
			}
			kGot, err := tr.KNNSearch(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			kWant := bruteKNN(survivors, q, 7)
			for i := range kWant {
				kWant[i].ID = ids[kWant[i].ID]
			}
			if !sameResults(kGot, kWant) {
				t.Fatalf("grow=%v trial %d: kNN diverged from survivor brute force", grow, trial)
			}
		}
	}
}

func TestDeleteErrors(t *testing.T) {
	data := randData(50, 4, 74)
	tr, err := Build(data, nil, Config{NumPivots: 2, PivotSeed: 75})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete([]float64{1, 2}, 0); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := tr.Delete(data[0], 999); err == nil {
		t.Fatal("unknown id accepted")
	}
	if err := tr.Delete(data[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(data[0], 0); err == nil {
		t.Fatal("double delete accepted")
	}
}

// Delete frees the store row, a later Insert recycles it, and the pair
// enumerator never emits deleted points — including from leaves
// emptied entirely.
func TestDeleteRecyclesRowsAndPairEnumeration(t *testing.T) {
	data := randData(120, 5, 76)
	tr, err := Build(data, nil, Config{NumPivots: 2, PivotSeed: 77})
	if err != nil {
		t.Fatal(err)
	}
	slots := tr.points.Len()
	rng := rand.New(rand.NewSource(78))
	dead := map[int32]bool{}
	// Empty out a whole leaf's worth of nearby points plus a random set.
	for _, id := range rng.Perm(len(data))[:70] {
		if err := tr.Delete(data[id], int32(id)); err != nil {
			t.Fatal(err)
		}
		dead[int32(id)] = true
	}
	if tr.points.Live() != tr.Len() {
		t.Fatalf("store live %d != tree len %d", tr.points.Live(), tr.Len())
	}
	// Re-insert new points: rows must be recycled, not grown.
	for i := 0; i < 30; i++ {
		if err := tr.Insert(data[i], int32(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.points.Len() != slots {
		t.Fatalf("store grew to %d slots, want recycled %d", tr.points.Len(), slots)
	}
	en := tr.NewPairEnumerator()
	for {
		cand, ok := en.Next()
		if !ok {
			break
		}
		if dead[cand.ID1] || dead[cand.ID2] {
			t.Fatalf("enumerator emitted deleted id: %+v", cand)
		}
	}
}
