package pmtree

import (
	"math"

	"repro/internal/vec"
)

// Node splitting follows the M-tree mM_RAD promotion policy: among a
// set of candidate routing-object pairs, partition the overflowing
// entries by the generalized hyperplane (each entry goes to the nearer
// candidate) and keep the pair that minimizes the larger of the two
// covering radii. For node capacities around 16 the number of pairs is
// small enough to try all of them, which matches the quality the
// original PM-tree paper reports; for larger capacities a deterministic
// sample of pairs bounds the cost.

// maxExhaustivePairs caps the O(c²) promotion search.
const maxExhaustivePairs = 24

func (t *Tree) splitLeaf(n *node) (*routingEntry, *routingEntry) {
	entries := n.entries
	c1, c2 := t.promoteLeaf(entries)
	p1 := t.leafPoint(&entries[c1])
	p2 := t.leafPoint(&entries[c2])

	var e1, e2 []leafEntry
	for i, e := range entries {
		d1 := t.dist(t.leafPoint(&entries[i]), p1)
		d2 := t.dist(t.leafPoint(&entries[i]), p2)
		if d1 <= d2 {
			e.parentDist = d1
			e1 = append(e1, e)
		} else {
			e.parentDist = d2
			e2 = append(e2, e)
		}
	}
	// Guard against degenerate partitions (all points identical): move
	// one entry across so both halves are non-empty.
	if len(e1) == 0 {
		e1 = append(e1, e2[len(e2)-1])
		e2 = e2[:len(e2)-1]
	}
	if len(e2) == 0 {
		e2 = append(e2, e1[len(e1)-1])
		e1 = e1[:len(e1)-1]
	}

	// Routing centers are cloned out of the store so they stay valid (and
	// do not pin stale buffers) across later store growth.
	left := t.makeLeafRouting(vec.Clone(p1), e1)
	right := t.makeLeafRouting(vec.Clone(p2), e2)
	return left, right
}

// promoteLeaf returns the indices of the two promoted routing objects.
func (t *Tree) promoteLeaf(entries []leafEntry) (int, int) {
	n := len(entries)
	type pair struct{ i, j int }
	var pairs []pair
	if n*(n-1)/2 <= maxExhaustivePairs*2 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs = append(pairs, pair{i, j})
			}
		}
	} else {
		// Deterministic stride sample.
		for k := 0; len(pairs) < maxExhaustivePairs; k++ {
			i := (k * 7) % n
			j := (k*13 + 1) % n
			if i != j {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	best := pairs[0]
	bestCost := math.Inf(1)
	for _, pr := range pairs {
		r1, r2 := 0.0, 0.0
		pi := t.leafPoint(&entries[pr.i])
		pj := t.leafPoint(&entries[pr.j])
		for k := range entries {
			d1 := t.dist(t.leafPoint(&entries[k]), pi)
			d2 := t.dist(t.leafPoint(&entries[k]), pj)
			if d1 <= d2 {
				if d1 > r1 {
					r1 = d1
				}
			} else if d2 > r2 {
				r2 = d2
			}
		}
		if c := math.Max(r1, r2); c < bestCost {
			bestCost = c
			best = pr
		}
	}
	return best.i, best.j
}

// makeLeafRouting wraps a set of leaf entries into a leaf node and
// builds its routing entry: covering radius from parent distances and
// hyper-rings from the entries' exact pivot distances.
func (t *Tree) makeLeafRouting(center []float64, entries []leafEntry) *routingEntry {
	radius := 0.0
	hr := make([]Interval, len(t.pivots))
	for i := range hr {
		hr[i] = emptyInterval()
	}
	for i := range entries {
		if entries[i].parentDist > radius {
			radius = entries[i].parentDist
		}
		for k, d := range entries[i].pivotDist {
			hr[k].extend(d)
		}
	}
	return &routingEntry{
		center: center,
		radius: radius,
		child:  &node{leaf: true, entries: entries},
		hr:     hr,
	}
}

func (t *Tree) splitInner(n *node) (*routingEntry, *routingEntry) {
	entries := n.routing
	c1, c2 := t.promoteInner(entries)

	var e1, e2 []routingEntry
	for _, e := range entries {
		d1 := t.dist(e.center, entries[c1].center)
		d2 := t.dist(e.center, entries[c2].center)
		if d1 <= d2 {
			e.parentDist = d1
			e1 = append(e1, e)
		} else {
			e.parentDist = d2
			e2 = append(e2, e)
		}
	}
	if len(e1) == 0 {
		e1 = append(e1, e2[len(e2)-1])
		e2 = e2[:len(e2)-1]
	}
	if len(e2) == 0 {
		e2 = append(e2, e1[len(e1)-1])
		e1 = e1[:len(e1)-1]
	}

	left := t.makeInnerRouting(entries[c1].center, e1)
	right := t.makeInnerRouting(entries[c2].center, e2)
	return left, right
}

func (t *Tree) promoteInner(entries []routingEntry) (int, int) {
	n := len(entries)
	type pair struct{ i, j int }
	var pairs []pair
	if n*(n-1)/2 <= maxExhaustivePairs*2 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs = append(pairs, pair{i, j})
			}
		}
	} else {
		for k := 0; len(pairs) < maxExhaustivePairs; k++ {
			i := (k * 7) % n
			j := (k*13 + 1) % n
			if i != j {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	best := pairs[0]
	bestCost := math.Inf(1)
	for _, pr := range pairs {
		r1, r2 := 0.0, 0.0
		for k := range entries {
			// Covering radius must include the child subtree's own radius.
			d1 := t.dist(entries[k].center, entries[pr.i].center) + entries[k].radius
			d2 := t.dist(entries[k].center, entries[pr.j].center) + entries[k].radius
			if d1 <= d2 {
				if d1 > r1 {
					r1 = d1
				}
			} else if d2 > r2 {
				r2 = d2
			}
		}
		if c := math.Max(r1, r2); c < bestCost {
			bestCost = c
			best = pr
		}
	}
	return best.i, best.j
}

// makeInnerRouting wraps routing entries into an inner node and builds
// the parent routing entry: the radius covers every child ball and the
// ring is the union of the children's rings.
func (t *Tree) makeInnerRouting(center []float64, entries []routingEntry) *routingEntry {
	radius := 0.0
	hr := make([]Interval, len(t.pivots))
	for i := range hr {
		hr[i] = emptyInterval()
	}
	for i := range entries {
		if r := entries[i].parentDist + entries[i].radius; r > radius {
			radius = r
		}
		for k := range entries[i].hr {
			hr[k].union(entries[i].hr[k])
		}
	}
	return &routingEntry{
		center: center,
		radius: radius,
		child:  &node{leaf: false, routing: entries},
		hr:     hr,
	}
}
