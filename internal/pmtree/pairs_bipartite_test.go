package pmtree

import (
	"math"
	"sort"
	"testing"

	"repro/internal/vec"
)

// bruteCrossPairs returns every (i, j) pair with i from a and j from b,
// sorted by distance.
func bruteCrossPairs(a, b [][]float64) []PairCandidate {
	var out []PairCandidate
	for i := range a {
		for j := range b {
			out = append(out, PairCandidate{ID1: int32(i), ID2: int32(j), Dist: vec.L2(a[i], b[j])})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out
}

func collectPairs(en *PairEnumerator) []PairCandidate {
	var out []PairCandidate
	for {
		c, ok := en.Next()
		if !ok {
			return out
		}
		out = append(out, c)
	}
}

func TestBipartitePairEnumeratorFullOrder(t *testing.T) {
	// Different pivot counts on the two sides: cross-tree bounds must
	// not assume a shared pivot set.
	for _, pivots := range [][2]int{{0, 0}, {3, 3}, {3, 5}} {
		da := randomPoints(90, 6, 11)
		db := randomPoints(70, 6, 12)
		ta, err := Build(da, nil, Config{NumPivots: pivots[0], PivotSeed: 2, Capacity: 8})
		if err != nil {
			t.Fatal(err)
		}
		tb, err := Build(db, nil, Config{NumPivots: pivots[1], PivotSeed: 3, Capacity: 8})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteCrossPairs(da, db)
		got := collectPairs(ta.NewBipartitePairEnumerator(tb))
		if len(got) != len(want) {
			t.Fatalf("pivots=%v: enumerated %d pairs, want %d", pivots, len(got), len(want))
		}
		seen := make(map[[2]int32]bool)
		prev := math.Inf(-1)
		for i, c := range got {
			if c.ID1 < 0 || int(c.ID1) >= len(da) || c.ID2 < 0 || int(c.ID2) >= len(db) {
				t.Fatalf("pair %d: ids out of side ranges: %+v", i, c)
			}
			key := [2]int32{c.ID1, c.ID2}
			if seen[key] {
				t.Fatalf("pair %d: duplicate %v", i, key)
			}
			seen[key] = true
			if c.Dist < prev {
				t.Fatalf("pair %d: distance %v < previous %v (not nondecreasing)", i, c.Dist, prev)
			}
			prev = c.Dist
			if math.Abs(c.Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("pair %d: distance %v, brute force %v", i, c.Dist, want[i].Dist)
			}
		}
	}
}

func TestBipartitePairEnumeratorCutoff(t *testing.T) {
	da := randomPoints(120, 5, 21)
	db := randomPoints(100, 5, 22)
	ta, err := Build(da, nil, Config{NumPivots: 3, PivotSeed: 2, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Build(db, nil, Config{NumPivots: 3, PivotSeed: 5, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteCrossPairs(da, db)
	cutoff := want[len(want)/10].Dist
	en := ta.NewBipartitePairEnumerator(tb)
	en.SetCutoff(cutoff)
	got := collectPairs(en)
	wantN := 0
	for _, c := range want {
		if c.Dist <= cutoff {
			wantN++
		}
	}
	if len(got) != wantN {
		t.Fatalf("cutoff %v: got %d pairs, want %d", cutoff, len(got), wantN)
	}
	for i, c := range got {
		if c.Dist > cutoff {
			t.Fatalf("pair %d: distance %v above cutoff %v", i, c.Dist, cutoff)
		}
	}
	// Re-raising the cutoff is ignored and the enumeration stays done.
	en.SetCutoff(2 * cutoff)
	if _, ok := en.Next(); ok {
		t.Fatal("enumeration resumed after finishing")
	}
}

func TestBipartitePairEnumeratorShrinkingCutoff(t *testing.T) {
	da := randomPoints(80, 4, 31)
	db := randomPoints(80, 4, 32)
	ta, err := Build(da, nil, Config{NumPivots: 2, PivotSeed: 2, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Build(db, nil, Config{NumPivots: 2, PivotSeed: 9, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteCrossPairs(da, db)
	// Emulate a top-k driver: keep the 25 closest pairs, shrinking the
	// cutoff to the running 25th distance.
	const k = 25
	en := ta.NewBipartitePairEnumerator(tb)
	var got []PairCandidate
	for {
		c, ok := en.Next()
		if !ok {
			break
		}
		got = append(got, c)
		if len(got) >= k {
			en.SetCutoff(got[k-1].Dist)
		}
	}
	if len(got) < k {
		t.Fatalf("got %d pairs, want at least %d", len(got), k)
	}
	for i := 0; i < k; i++ {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: distance %v, brute force %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestBipartitePairEnumeratorSmallAndEmpty(t *testing.T) {
	da := randomPoints(1, 3, 41)
	db := randomPoints(1, 3, 42)
	ta, err := Build(da, nil, Config{NumPivots: 0, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Build(db, nil, Config{NumPivots: 0, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One point per side: exactly one cross pair (a self-join of either
	// tree would enumerate nothing).
	got := collectPairs(ta.NewBipartitePairEnumerator(tb))
	if len(got) != 1 {
		t.Fatalf("got %d pairs, want 1", len(got))
	}
	if got[0].ID1 != 0 || got[0].ID2 != 0 {
		t.Fatalf("got ids %d,%d, want 0,0", got[0].ID1, got[0].ID2)
	}
	if want := vec.L2(da[0], db[0]); math.Abs(got[0].Dist-want) > 1e-12 {
		t.Fatalf("got distance %v, want %v", got[0].Dist, want)
	}

	// An empty side (only point deleted) enumerates nothing.
	ep := randomPoints(1, 3, 43)
	empty, err := Build(ep, nil, Config{NumPivots: 0, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Delete(ep[0], 0); err != nil {
		t.Fatal(err)
	}
	if got := collectPairs(ta.NewBipartitePairEnumerator(empty)); len(got) != 0 {
		t.Fatalf("empty side: got %d pairs, want 0", len(got))
	}
	if got := collectPairs(empty.NewBipartitePairEnumerator(tb)); len(got) != 0 {
		t.Fatalf("empty side: got %d pairs, want 0", len(got))
	}
}

func TestBipartitePairEnumeratorAfterDeletes(t *testing.T) {
	da := randomPoints(60, 5, 51)
	db := randomPoints(60, 5, 52)
	ta, err := Build(da, nil, Config{NumPivots: 3, PivotSeed: 2, Capacity: 6})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Build(db, nil, Config{NumPivots: 3, PivotSeed: 7, Capacity: 6})
	if err != nil {
		t.Fatal(err)
	}
	liveA := map[int32]bool{}
	liveB := map[int32]bool{}
	for i := range da {
		liveA[int32(i)] = true
	}
	for i := range db {
		liveB[int32(i)] = true
	}
	for i := 0; i < 20; i++ {
		if err := ta.Delete(da[i*2], int32(i*2)); err != nil {
			t.Fatal(err)
		}
		delete(liveA, int32(i*2))
		if err := tb.Delete(db[i*3%60], int32(i*3%60)); err != nil {
			t.Fatal(err)
		}
		delete(liveB, int32(i*3%60))
	}
	var wantPairs []PairCandidate
	for i := range da {
		if !liveA[int32(i)] {
			continue
		}
		for j := range db {
			if !liveB[int32(j)] {
				continue
			}
			wantPairs = append(wantPairs, PairCandidate{ID1: int32(i), ID2: int32(j), Dist: vec.L2(da[i], db[j])})
		}
	}
	sort.Slice(wantPairs, func(i, j int) bool { return wantPairs[i].Dist < wantPairs[j].Dist })
	got := collectPairs(ta.NewBipartitePairEnumerator(tb))
	if len(got) != len(wantPairs) {
		t.Fatalf("got %d pairs, want %d", len(got), len(wantPairs))
	}
	for i, c := range got {
		if !liveA[c.ID1] || !liveB[c.ID2] {
			t.Fatalf("pair %d references a deleted id: %+v", i, c)
		}
		if math.Abs(c.Dist-wantPairs[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: distance %v, brute force %v", i, c.Dist, wantPairs[i].Dist)
		}
	}
}
