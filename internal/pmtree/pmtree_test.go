package pmtree

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func randData(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.NormFloat64() * 10
		}
		out[i] = p
	}
	return out
}

func bruteRange(data [][]float64, q []float64, r float64) []Result {
	var out []Result
	for i, p := range data {
		if d := vec.L2(q, p); d <= r {
			out = append(out, Result{ID: int32(i), Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func bruteKNN(data [][]float64, q []float64, k int) []Result {
	out := make([]Result, 0, len(data))
	for i, p := range data {
		out = append(out, Result{ID: int32(i), Dist: vec.L2(q, p)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Error("dim=0 should fail")
	}
	if _, err := New(3, Config{Capacity: 2}); err == nil {
		t.Error("capacity=2 should fail")
	}
	if _, err := New(3, Config{NumPivots: -1}); err == nil {
		t.Error("negative pivots should fail")
	}
	tr, err := New(3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.capacity != DefaultCapacity {
		t.Errorf("default capacity = %d", tr.capacity)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, Config{}); err == nil {
		t.Error("empty build should fail")
	}
	if _, err := Build([][]float64{{1, 2}}, []int32{1, 2}, Config{}); err == nil {
		t.Error("id length mismatch should fail")
	}
}

func TestInsertDimMismatch(t *testing.T) {
	tr, _ := New(3, Config{})
	if err := tr.Insert([]float64{1, 2}, 0); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr, _ := New(3, Config{NumPivots: 2})
	res, err := tr.RangeSearch([]float64{0, 0, 0}, 5)
	if err != nil || res != nil {
		t.Errorf("empty range: %v %v", res, err)
	}
	res, err = tr.KNNSearch([]float64{0, 0, 0}, 3)
	if err != nil || res != nil {
		t.Errorf("empty knn: %v %v", res, err)
	}
}

func TestQueryValidation(t *testing.T) {
	data := randData(10, 4, 1)
	tr, _ := Build(data, nil, Config{NumPivots: 2})
	if _, err := tr.RangeSearch([]float64{1}, 1); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := tr.RangeSearch(data[0], -1); err == nil {
		t.Error("negative radius should fail")
	}
	if _, err := tr.KNNSearch([]float64{1}, 1); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := tr.KNNSearch(data[0], 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	for _, s := range []int{0, 3, 5} {
		data := randData(500, 8, 7)
		tr, err := Build(data, nil, Config{NumPivots: s, PivotSeed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 25; trial++ {
			q := make([]float64, 8)
			for j := range q {
				q[j] = rng.NormFloat64() * 10
			}
			r := rng.Float64() * 25
			got, err := tr.RangeSearch(q, r)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteRange(data, q, r)
			if !sameResults(got, want) {
				t.Fatalf("s=%d trial=%d: range mismatch: got %d, want %d", s, trial, len(got), len(want))
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, s := range []int{0, 5} {
		data := randData(400, 6, 21)
		tr, err := Build(data, nil, Config{NumPivots: s, PivotSeed: 5})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 20; trial++ {
			q := make([]float64, 6)
			for j := range q {
				q[j] = rng.NormFloat64() * 10
			}
			k := 1 + rng.Intn(30)
			got, err := tr.KNNSearch(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(data, q, k)
			if len(got) != len(want) {
				t.Fatalf("s=%d k=%d: got %d results, want %d", s, k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("s=%d k=%d pos=%d: dist %v vs %v", s, k, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

// Property: random datasets and radii — tree range equals brute force.
func TestRangeQuick(t *testing.T) {
	f := func(seed int64, ru uint8) bool {
		n := 80
		data := randData(n, 5, seed)
		tr, err := Build(data, nil, Config{NumPivots: 4, Capacity: 6, PivotSeed: seed})
		if err != nil {
			return false
		}
		q := data[int(ru)%n]
		r := float64(ru%40) / 2
		got, err := tr.RangeSearch(q, r)
		if err != nil {
			return false
		}
		return sameResults(got, bruteRange(data, q, r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Structural invariants: every point within every ancestor ball, every
// pivot distance inside every ancestor ring.
func TestStructuralInvariants(t *testing.T) {
	data := randData(600, 7, 99)
	tr, err := Build(data, nil, Config{NumPivots: 5, Capacity: 8, PivotSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var verify func(n *node, ancestors []*routingEntry)
	verify = func(n *node, ancestors []*routingEntry) {
		if n.leaf {
			for i := range n.entries {
				e := &n.entries[i]
				for _, a := range ancestors {
					if d := vec.L2(tr.leafPoint(e), a.center); d > a.radius+1e-9 {
						t.Fatalf("point %d outside ancestor ball: %v > %v", e.id, d, a.radius)
					}
					for k, pd := range e.pivotDist {
						if pd < a.hr[k].Min-1e-9 || pd > a.hr[k].Max+1e-9 {
							t.Fatalf("point %d pivot %d dist %v outside ring [%v,%v]",
								e.id, k, pd, a.hr[k].Min, a.hr[k].Max)
						}
					}
				}
				// Stored pivot distances must be exact.
				for k, pd := range e.pivotDist {
					if math.Abs(pd-vec.L2(tr.leafPoint(e), tr.pivots[k])) > 1e-9 {
						t.Fatalf("stale pivot distance for point %d pivot %d", e.id, k)
					}
				}
			}
			return
		}
		for i := range n.routing {
			e := &n.routing[i]
			verify(e.child, append(ancestors, e))
		}
	}
	verify(tr.root, nil)
}

func TestNodeCapacityRespected(t *testing.T) {
	data := randData(500, 4, 31)
	tr, _ := Build(data, nil, Config{NumPivots: 3, Capacity: 8})
	tr.Walk(func(info NodeInfo) {
		if info.NumEntries > 8 {
			t.Fatalf("node with %d entries exceeds capacity 8", info.NumEntries)
		}
		if info.NumEntries == 0 {
			t.Fatal("empty node in tree")
		}
	})
}

func TestLenDimHeight(t *testing.T) {
	data := randData(300, 5, 8)
	tr, _ := Build(data, nil, Config{NumPivots: 2})
	if tr.Len() != 300 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Dim() != 5 {
		t.Errorf("Dim = %d", tr.Dim())
	}
	if tr.Height() < 2 {
		t.Errorf("Height = %d, want >= 2 for 300 points at capacity 16", tr.Height())
	}
	if tr.NumPivots() != 2 || len(tr.Pivots()) != 2 {
		t.Errorf("NumPivots = %d", tr.NumPivots())
	}
}

func TestCustomIDs(t *testing.T) {
	data := randData(50, 3, 4)
	ids := make([]int32, 50)
	for i := range ids {
		ids[i] = int32(1000 + i)
	}
	tr, _ := Build(data, ids, Config{NumPivots: 2})
	res, _ := tr.KNNSearch(data[7], 1)
	if len(res) != 1 || res[0].ID != 1007 {
		t.Errorf("got %v, want ID 1007", res)
	}
}

func TestStatsCounters(t *testing.T) {
	data := randData(200, 5, 14)
	tr, _ := Build(data, nil, Config{NumPivots: 3})
	tr.ResetStats()
	if tr.DistanceComputations() != 0 || tr.NodeAccesses() != 0 {
		t.Fatal("reset did not zero counters")
	}
	if _, err := tr.RangeSearch(data[0], 5); err != nil {
		t.Fatal(err)
	}
	if tr.DistanceComputations() == 0 {
		t.Error("range search should compute distances")
	}
	if tr.NodeAccesses() == 0 {
		t.Error("range search should access nodes")
	}
}

// Pruning power: with pivots the tree should need no more distance
// computations than without (on average clearly fewer).
func TestPivotsReduceDistanceComputations(t *testing.T) {
	data := randData(2000, 8, 55)
	plain, _ := Build(data, nil, Config{NumPivots: 0})
	pm, _ := Build(data, nil, Config{NumPivots: 5, PivotSeed: 3})
	rng := rand.New(rand.NewSource(77))
	plain.ResetStats()
	pm.ResetStats()
	for i := 0; i < 30; i++ {
		q := data[rng.Intn(len(data))]
		r := 10 + rng.Float64()*10
		if _, err := plain.RangeSearch(q, r); err != nil {
			t.Fatal(err)
		}
		if _, err := pm.RangeSearch(q, r); err != nil {
			t.Fatal(err)
		}
	}
	// Subtract the per-query pivot-distance overhead (5 per query).
	pmWork := pm.DistanceComputations() - int64(30*5)
	if pmWork > plain.DistanceComputations() {
		t.Errorf("pivots increased work: pm=%d plain=%d", pmWork, plain.DistanceComputations())
	}
}

func TestDuplicatePointsSplitSafely(t *testing.T) {
	// 100 identical points force degenerate splits.
	data := make([][]float64, 100)
	for i := range data {
		data[i] = []float64{1, 2, 3}
	}
	tr, err := Build(data, nil, Config{NumPivots: 2, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.RangeSearch([]float64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 100 {
		t.Errorf("found %d duplicates, want 100", len(res))
	}
}

func TestRangeZeroRadius(t *testing.T) {
	data := randData(100, 4, 6)
	tr, _ := Build(data, nil, Config{NumPivots: 2})
	res, err := tr.RangeSearch(data[42], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 42 {
		t.Errorf("zero-radius search = %v", res)
	}
}

func TestKNNMoreThanN(t *testing.T) {
	data := randData(10, 3, 2)
	tr, _ := Build(data, nil, Config{NumPivots: 1})
	res, err := tr.KNNSearch(data[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Errorf("got %d results, want all 10", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Error("kNN results not sorted")
		}
	}
}

func TestWalkCoversAllPoints(t *testing.T) {
	data := randData(350, 5, 17)
	tr, _ := Build(data, nil, Config{NumPivots: 3})
	leafTotal := 0
	nodes := 0
	tr.Walk(func(info NodeInfo) {
		nodes++
		if info.Leaf {
			leafTotal += info.NumEntries
		}
	})
	if leafTotal != 350 {
		t.Errorf("leaves hold %d points, want 350", leafTotal)
	}
	if nodes < 350/DefaultCapacity {
		t.Errorf("unexpectedly few nodes: %d", nodes)
	}
}

func TestSelectPivotsSeparation(t *testing.T) {
	data := randData(500, 6, 23)
	pv := selectPivots(data, 5, 1)
	if len(pv) != 5 {
		t.Fatalf("got %d pivots", len(pv))
	}
	// Pivots should be pairwise distinct and reasonably separated
	// compared with the average pairwise distance.
	var avg float64
	cnt := 0
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			avg += vec.L2(data[i], data[j])
			cnt++
		}
	}
	avg /= float64(cnt)
	for i := range pv {
		for j := i + 1; j < len(pv); j++ {
			d := vec.L2(pv[i], pv[j])
			if d < avg*0.5 {
				t.Errorf("pivots %d,%d too close: %v (avg %v)", i, j, d, avg)
			}
		}
	}
	if selectPivots(nil, 3, 1) != nil {
		t.Error("no data should give no pivots")
	}
	if got := selectPivots(data[:2], 5, 1); len(got) != 2 {
		t.Errorf("s capped at n: got %d", len(got))
	}
}

// Read-only queries from many goroutines must be race-free (counters
// are atomic) and agree with sequential answers. Run with -race.
func TestConcurrentRangeQueries(t *testing.T) {
	data := randData(800, 6, 71)
	tr, _ := Build(data, nil, Config{NumPivots: 4})
	queries := make([][]float64, 12)
	radii := make([]float64, 12)
	rng := rand.New(rand.NewSource(9))
	for i := range queries {
		q := make([]float64, 6)
		for j := range q {
			q[j] = rng.NormFloat64() * 10
		}
		queries[i] = q
		radii[i] = 5 + rng.Float64()*15
	}
	want := make([][]Result, len(queries))
	for i := range queries {
		res, err := tr.RangeSearch(queries[i], radii[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	var wg sync.WaitGroup
	got := make([][]Result, len(queries))
	errs := make([]error, len(queries))
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = tr.RangeSearch(queries[i], radii[i])
		}(i)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !sameResults(got[i], want[i]) {
			t.Fatalf("concurrent query %d differs from sequential", i)
		}
	}
}

func TestIntervalOps(t *testing.T) {
	iv := emptyInterval()
	iv.extend(3)
	if iv.Min != 3 || iv.Max != 3 {
		t.Errorf("extend: %+v", iv)
	}
	iv.extend(1)
	iv.extend(5)
	if iv.Min != 1 || iv.Max != 5 {
		t.Errorf("extend: %+v", iv)
	}
	if !iv.contains(3) || iv.contains(6) || iv.contains(0.5) {
		t.Error("contains wrong")
	}
	other := Interval{Min: -1, Max: 2}
	iv.union(other)
	if iv.Min != -1 || iv.Max != 5 {
		t.Errorf("union: %+v", iv)
	}
}
