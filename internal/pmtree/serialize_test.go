package pmtree

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	data := randData(700, 8, 51)
	orig, err := Build(data, nil, Config{NumPivots: 4, Capacity: 8, PivotSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}

	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() || loaded.Dim() != orig.Dim() ||
		loaded.NumPivots() != orig.NumPivots() || loaded.Height() != orig.Height() {
		t.Fatalf("shape mismatch: %d/%d %d/%d %d/%d %d/%d",
			loaded.Len(), orig.Len(), loaded.Dim(), orig.Dim(),
			loaded.NumPivots(), orig.NumPivots(), loaded.Height(), orig.Height())
	}

	// Identical query answers on both trees.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		q := make([]float64, 8)
		for j := range q {
			q[j] = rng.NormFloat64() * 10
		}
		r := rng.Float64() * 20
		a, err := orig.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(a, b) {
			t.Fatalf("trial %d: range results differ (%d vs %d)", trial, len(a), len(b))
		}
		ka, _ := orig.KNNSearch(q, 7)
		kb, _ := loaded.KNNSearch(q, 7)
		if len(ka) != len(kb) {
			t.Fatalf("kNN result counts differ")
		}
		for i := range ka {
			if ka[i].Dist != kb[i].Dist {
				t.Fatalf("kNN distances differ at %d", i)
			}
		}
	}

	// The loaded tree accepts further inserts.
	if err := loaded.Insert(make([]float64, 8), 9999); err != nil {
		t.Fatal(err)
	}
	res, err := loaded.RangeSearch(make([]float64, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, x := range res {
		if x.ID == 9999 {
			found = true
		}
	}
	if !found {
		t.Error("insert after load not found")
	}
}

func TestSerializeZeroPivots(t *testing.T) {
	data := randData(100, 5, 52)
	orig, _ := Build(data, nil, Config{NumPivots: 0})
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPivots() != 0 || loaded.Len() != 100 {
		t.Errorf("loaded: pivots=%d len=%d", loaded.NumPivots(), loaded.Len())
	}
}

func TestReadRejectsCorruptInput(t *testing.T) {
	data := randData(60, 4, 53)
	orig, _ := Build(data, nil, Config{NumPivots: 2})
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	if _, err := Read(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
	// Empty stream.
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	// Corrupt header count.
	bad2 := append([]byte(nil), raw...)
	bad2[12]++ // count field low byte
	if _, err := Read(bytes.NewReader(bad2)); err == nil {
		t.Error("corrupt count accepted")
	}
}
