package pmtree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/store"
)

// Binary serialization of the tree structure. The format is
// little-endian and versioned:
//
//	magic "PMT2" | dim u32 | capacity u32 | count u32 | pivots u32
//	pivot points (pivots × dim f64)
//	recursive node encoding:
//	  leaf flag u8 | entry count u32
//	  leaf entry:    id i32 | point dim×f64 | parentDist f64 | pivotDist s×f64
//	  routing entry: center dim×f64 | radius f64 | parentDist f64 |
//	                 hr s×{min,max} f64 | child node
//
// Loading a stream reproduces the exact tree (same splits, same
// counters at zero), so a saved index answers queries identically.
//
// Version 2 admits leaf nodes with zero entries, which deletions can
// leave behind; the byte layout is otherwise identical to version 1,
// so Read accepts both magics.

var pmtMagic = [4]byte{'P', 'M', 'T', '2'}
var pmtMagicV1 = [4]byte{'P', 'M', 'T', '1'}

// WriteTo serializes the tree. It implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if err := t.encode(cw); err != nil {
		return cw.n, err
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, fmt.Errorf("pmtree: flush: %w", err)
	}
	return cw.n, nil
}

func (t *Tree) encode(w io.Writer) error {
	if _, err := w.Write(pmtMagic[:]); err != nil {
		return fmt.Errorf("pmtree: write magic: %w", err)
	}
	hdr := []uint32{uint32(t.dim), uint32(t.capacity), uint32(t.count), uint32(len(t.pivots))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("pmtree: write header: %w", err)
	}
	for _, p := range t.pivots {
		if err := writeFloats(w, p); err != nil {
			return err
		}
	}
	return t.encodeNode(w, t.root)
}

func (t *Tree) encodeNode(w io.Writer, n *node) error {
	flag := byte(0)
	if n.leaf {
		flag = 1
	}
	if _, err := w.Write([]byte{flag}); err != nil {
		return fmt.Errorf("pmtree: write node flag: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(n.size())); err != nil {
		return fmt.Errorf("pmtree: write entry count: %w", err)
	}
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			if err := binary.Write(w, binary.LittleEndian, e.id); err != nil {
				return fmt.Errorf("pmtree: write id: %w", err)
			}
			if err := writeFloats(w, t.leafPoint(e)); err != nil {
				return err
			}
			if err := writeFloats(w, []float64{e.parentDist}); err != nil {
				return err
			}
			if err := writeFloats(w, e.pivotDist); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range n.routing {
		e := &n.routing[i]
		if err := writeFloats(w, e.center); err != nil {
			return err
		}
		if err := writeFloats(w, []float64{e.radius, e.parentDist}); err != nil {
			return err
		}
		for _, iv := range e.hr {
			if err := writeFloats(w, []float64{iv.Min, iv.Max}); err != nil {
				return err
			}
		}
		if err := t.encodeNode(w, e.child); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes a tree previously written with WriteTo.
func Read(r io.Reader) (*Tree, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("pmtree: read magic: %w", err)
	}
	if magic != pmtMagic && magic != pmtMagicV1 {
		return nil, fmt.Errorf("pmtree: bad magic %q", magic)
	}
	hdr := make([]uint32, 4)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("pmtree: read header: %w", err)
	}
	dim, capacity, count, numPivots := int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3])
	if dim < 1 || capacity < 4 || numPivots < 0 || count < 0 ||
		// Plausibility bounds: header fields size allocations (pivot
		// slices, per-entry pivotDist, per-node entry arrays), so a
		// corrupt header must error out before any of them.
		dim > 1<<20 || capacity > 1<<20 || count > 1<<30 || numPivots > 1<<12 {
		return nil, fmt.Errorf("pmtree: corrupt header dim=%d cap=%d count=%d pivots=%d",
			dim, capacity, count, numPivots)
	}
	// The point store grows as nodes decode; the header count is
	// untrusted, so it must not size an up-front allocation (a corrupt
	// stream could demand petabytes or overflow count*dim). It is
	// verified against the decoded leaves below.
	pts, err := store.New(dim)
	if err != nil {
		return nil, fmt.Errorf("pmtree: %w", err)
	}
	t := &Tree{dim: dim, capacity: capacity, count: count, points: pts}
	t.pivots = make([][]float64, numPivots)
	for i := range t.pivots {
		p, err := readFloats(br, dim)
		if err != nil {
			return nil, err
		}
		t.pivots[i] = p
	}
	root, err := t.decodeNode(br, numPivots)
	if err != nil {
		return nil, err
	}
	t.root = root
	// Verify the advertised count against the leaves.
	got := 0
	t.Walk(func(info NodeInfo) {
		if info.Leaf {
			got += info.NumEntries
		}
	})
	if got != count {
		return nil, fmt.Errorf("pmtree: header count %d but leaves hold %d points", count, got)
	}
	return t, nil
}

func (t *Tree) decodeNode(r io.Reader, numPivots int) (*node, error) {
	var flag [1]byte
	if _, err := io.ReadFull(r, flag[:]); err != nil {
		return nil, fmt.Errorf("pmtree: read node flag: %w", err)
	}
	if flag[0] > 1 {
		return nil, fmt.Errorf("pmtree: corrupt node flag %d", flag[0])
	}
	var cnt uint32
	if err := binary.Read(r, binary.LittleEndian, &cnt); err != nil {
		return nil, fmt.Errorf("pmtree: read entry count: %w", err)
	}
	// Leaves may be empty (deletions leave them behind); inner nodes
	// never are.
	if int(cnt) > t.capacity || (cnt == 0 && flag[0] != 1) {
		return nil, fmt.Errorf("pmtree: corrupt entry count %d (capacity %d)", cnt, t.capacity)
	}
	n := &node{leaf: flag[0] == 1}
	if n.leaf {
		n.entries = make([]leafEntry, cnt)
		for i := range n.entries {
			e := &n.entries[i]
			if err := binary.Read(r, binary.LittleEndian, &e.id); err != nil {
				return nil, fmt.Errorf("pmtree: read id: %w", err)
			}
			p, err := readFloats(r, t.dim)
			if err != nil {
				return nil, err
			}
			if !validFinite(p) {
				return nil, fmt.Errorf("pmtree: corrupt leaf entry %d", e.id)
			}
			row, err := t.points.Append(p)
			if err != nil {
				return nil, fmt.Errorf("pmtree: %w", err)
			}
			e.row = row
			pd, err := readFloats(r, 1)
			if err != nil {
				return nil, err
			}
			e.parentDist = pd[0]
			if numPivots > 0 {
				e.pivotDist, err = readFloats(r, numPivots)
				if err != nil {
					return nil, err
				}
			}
			if math.IsNaN(e.parentDist) {
				return nil, fmt.Errorf("pmtree: corrupt leaf entry %d", e.id)
			}
		}
		return n, nil
	}
	n.routing = make([]routingEntry, cnt)
	for i := range n.routing {
		e := &n.routing[i]
		c, err := readFloats(r, t.dim)
		if err != nil {
			return nil, err
		}
		e.center = c
		rp, err := readFloats(r, 2)
		if err != nil {
			return nil, err
		}
		e.radius, e.parentDist = rp[0], rp[1]
		e.hr = make([]Interval, numPivots)
		for k := range e.hr {
			mm, err := readFloats(r, 2)
			if err != nil {
				return nil, err
			}
			e.hr[k] = Interval{Min: mm[0], Max: mm[1]}
		}
		child, err := t.decodeNode(r, numPivots)
		if err != nil {
			return nil, err
		}
		e.child = child
	}
	return n, nil
}

func writeFloats(w io.Writer, fs []float64) error {
	if err := binary.Write(w, binary.LittleEndian, fs); err != nil {
		return fmt.Errorf("pmtree: write floats: %w", err)
	}
	return nil
}

func readFloats(r io.Reader, n int) ([]float64, error) {
	out := make([]float64, n)
	if err := binary.Read(r, binary.LittleEndian, out); err != nil {
		return nil, fmt.Errorf("pmtree: read floats: %w", err)
	}
	return out, nil
}

func validFinite(fs []float64) bool {
	for _, f := range fs {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
