package pmtree

import "sort"

// Bulk loading. Inserting points one at a time builds a poor tree: the
// early tree shape is arbitrary, splits scatter near points across
// nodes, and leaves end up half-full with covering radii an order of
// magnitude above the local point spacing — which cripples every
// query's ball/ring pruning, most of all the closest-pair self-join
// (whose cost is driven by the number of leaf PAIRS with overlapping
// regions). Bulk loading instead clusters the points top-down and
// assembles the tree bottom-up:
//
//  1. the point set is recursively bisected: two far-apart pivot rows
//     are chosen (a double scan: the row farthest from an arbitrary
//     row, then the row farthest from that) and every row joins the
//     nearer pivot's side, until a partition fits in one leaf. A
//     median split replaces any partition that comes out more
//     imbalanced than 1:3, which bounds the recursion depth;
//  2. each leaf picks the minimax row of its partition as routing
//     object (the covering radius is as small as the partition
//     allows);
//  3. each level of routing entries is grouped into runs of capacity —
//     consecutive entries share a recursion branch and therefore lie
//     close — and the group's minimax center routes the parent.
//
// Radii, parent distances and hyper-rings are computed exactly from the
// covered points, so bulk-built regions are as tight as the clustering
// allows. Later Inserts use the normal descend-and-split path.
//
// Cost: O(n log n) metric evaluations for the bisection plus
// O(n·capacity) for leaf packing — comparable to one insertion pass.

// bulkLoad builds the tree over all rows of t.points. ids[row] is
// stored with each point (nil = row index). Must be called on a fresh
// tree (count == 0).
func (t *Tree) bulkLoad(ids []int32) {
	n := t.points.Len()
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	da := make([]float64, n) // distance-to-pivot scratch, shared down the recursion
	db := make([]float64, n)

	var level []routingEntry
	// mm carries a partition's minimax result (aligned with the current
	// ordering of rs) down the recursion so each partition's O(m²)
	// matrix is computed once, not re-derived by the refinement check
	// and again by packLeaf.
	var rec func(rs []int32, da, db []float64, mm *minimaxResult)
	rec = func(rs []int32, da, db []float64, mm *minimaxResult) {
		if len(rs) > t.capacity {
			mid := t.bisect(rs, da, db, false)
			rec(rs[:mid], da[:mid], db[:mid], nil)
			rec(rs[mid:], da[mid:], db[mid:], nil)
			return
		}
		if mm == nil {
			mm = t.minimax(rs)
		}
		// Refinement: a leaf-sized chunk still splits when both halves'
		// covering radii fall under half the chunk's — the chunk
		// straddles distinct point groups, and two tight partial leaves
		// prune far better than one full loose one. Natural groups stop
		// splitting (no half reduces the radius much), so this
		// terminates, as does the radius halving itself. The probe
		// partitions a scratch copy so a rejected split leaves rs — and
		// therefore mm's index alignment — intact.
		if len(rs) >= 6 && mm.radius > 0 {
			probe := append([]int32(nil), rs...)
			pda := make([]float64, len(probe))
			pdb := make([]float64, len(probe))
			if mid := t.bisect(probe, pda, pdb, true); mid > 0 {
				mmL := t.minimax(probe[:mid])
				mmR := t.minimax(probe[mid:])
				if mmL.radius <= 0.5*mm.radius && mmR.radius <= 0.5*mm.radius {
					copy(rs, probe)
					rec(rs[:mid], da[:mid], db[:mid], mmL)
					rec(rs[mid:], da[mid:], db[mid:], mmR)
					return
				}
			}
		}
		level = append(level, t.packLeaf(rs, ids, mm))
	}
	rec(rows, da, db, nil)

	// Assemble upper levels until the entries fit one root node.
	for len(level) > t.capacity {
		next := make([]routingEntry, 0, (len(level)+t.capacity-1)/t.capacity)
		for g := 0; g < len(level); g += t.capacity {
			end := g + t.capacity
			if end > len(level) {
				end = len(level)
			}
			group := make([]routingEntry, end-g)
			copy(group, level[g:end])
			next = append(next, t.makeParent(group))
		}
		level = next
	}
	if len(level) == 1 && level[0].child.leaf {
		t.root = level[0].child
	} else {
		// Root routing entries have no parent object: parentDist 0.
		for i := range level {
			level[i].parentDist = 0
		}
		t.root = &node{leaf: false, routing: level}
	}
	t.count = n
}

// bisect partitions rs in place around two far-apart pivot rows and
// returns the split index. In relaxed mode (leaf refinement) any
// two-sided partition is accepted, and -1 reports a degenerate one;
// otherwise imbalance beyond 1:3 falls back to a median split so the
// recursion depth stays logarithmic.
func (t *Tree) bisect(rs []int32, da, db []float64, relaxed bool) int {
	p0 := t.points.Row(int(rs[0]))
	ai, amax := 0, -1.0
	for i, r := range rs {
		if d := t.dist(p0, t.points.Row(int(r))); d > amax {
			amax, ai = d, i
		}
	}
	pa := t.points.Row(int(rs[ai]))
	bi, bmax := 0, -1.0
	for i, r := range rs {
		d := t.dist(pa, t.points.Row(int(r)))
		da[i] = d
		if d > bmax {
			bmax, bi = d, i
		}
	}
	pb := t.points.Row(int(rs[bi]))
	for i, r := range rs {
		db[i] = t.dist(pb, t.points.Row(int(r)))
	}

	// Two-pointer partition: rows nearer pivot a (ties included) left.
	i, j := 0, len(rs)-1
	for i <= j {
		if da[i] <= db[i] {
			i++
			continue
		}
		rs[i], rs[j] = rs[j], rs[i]
		da[i], da[j] = da[j], da[i]
		db[i], db[j] = db[j], db[i]
		j--
	}
	if relaxed {
		if i == 0 || i == len(rs) {
			return -1
		}
		return i
	}
	if min := len(rs) / 4; i >= min && len(rs)-i >= min {
		return i
	}
	// Degenerate or imbalanced split (duplicates, outlier pivots):
	// fall back to the median of the distance to pivot a, which halves
	// the partition and bounds the recursion depth.
	sort.Sort(&rowsByDist{rs: rs, d: da, d2: db})
	return len(rs) / 2
}

// rowsByDist sorts a row partition by pivot distance, keeping the
// scratch arrays aligned.
type rowsByDist struct {
	rs []int32
	d  []float64
	d2 []float64
}

func (s *rowsByDist) Len() int           { return len(s.rs) }
func (s *rowsByDist) Less(i, j int) bool { return s.d[i] < s.d[j] }
func (s *rowsByDist) Swap(i, j int) {
	s.rs[i], s.rs[j] = s.rs[j], s.rs[i]
	s.d[i], s.d[j] = s.d[j], s.d[i]
	s.d2[i], s.d2[j] = s.d2[j], s.d2[i]
}

// minimaxResult is one partition's pairwise distance matrix (row-major,
// aligned with the partition's ordering at computation time) and its
// minimax row: the row whose farthest partner is nearest, i.e. the
// smallest covering radius available without synthesizing a center.
type minimaxResult struct {
	dm     []float64
	best   int
	radius float64
}

// minimax computes a partition's minimaxResult (at most capacity²
// metric evaluations; symmetric halves mirrored).
func (t *Tree) minimax(rs []int32) *minimaxResult {
	m := len(rs)
	dm := make([]float64, m*m)
	for i := 0; i < m; i++ {
		pi := t.points.Row(int(rs[i]))
		for j := i + 1; j < m; j++ {
			d := t.dist(pi, t.points.Row(int(rs[j])))
			dm[i*m+j] = d
			dm[j*m+i] = d
		}
	}
	out := &minimaxResult{dm: dm, radius: -1}
	for i := 0; i < m; i++ {
		far := 0.0
		for j := 0; j < m; j++ {
			if d := dm[i*m+j]; d > far {
				far = d
			}
		}
		if out.radius < 0 || far < out.radius {
			out.best, out.radius = i, far
		}
	}
	return out
}

// packLeaf builds one leaf over a partition and returns its routing
// entry, routed by the partition's minimax row. mm must be aligned
// with the current ordering of rs.
func (t *Tree) packLeaf(rs []int32, ids []int32, mm *minimaxResult) routingEntry {
	m := len(rs)
	dm, best, bestRadius := mm.dm, mm.best, mm.radius

	leaf := &node{leaf: true, entries: make([]leafEntry, 0, m)}
	s := len(t.pivots)
	hr := newEmptyIntervals(s)
	// One contiguous pivot-distance block per leaf (entries subslice
	// it), so leaf scans walk sequential memory instead of chasing one
	// small allocation per entry.
	var pdAll []float64
	if s > 0 {
		pdAll = make([]float64, m*s)
	}
	for i, row := range rs {
		id := row
		if ids != nil {
			id = ids[row]
		}
		var pd []float64
		if s > 0 {
			pd = pdAll[i*s : (i+1)*s : (i+1)*s]
			p := t.points.Row(int(row))
			for k, pv := range t.pivots {
				pd[k] = t.dist(p, pv)
			}
			for k, d := range pd {
				hr[k].extend(d)
			}
		}
		leaf.entries = append(leaf.entries, leafEntry{
			row: row, id: id, parentDist: dm[best*m+i], pivotDist: pd,
		})
	}
	center := make([]float64, t.dim)
	copy(center, t.points.Row(int(rs[best])))
	return routingEntry{center: center, radius: bestRadius, child: leaf, hr: hr}
}

// makeParent wraps a run of routing entries into one parent entry: the
// minimax child center routes the group (minimizing the covering
// radius max_j d(c, c_j) + r_j), and the rings union the children's.
func (t *Tree) makeParent(group []routingEntry) routingEntry {
	m := len(group)
	dm := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := t.dist(group[i].center, group[j].center)
			dm[i*m+j] = d
			dm[j*m+i] = d
		}
	}
	best, bestRadius := 0, -1.0
	for i := 0; i < m; i++ {
		far := 0.0
		for j := 0; j < m; j++ {
			if r := dm[i*m+j] + group[j].radius; r > far {
				far = r
			}
		}
		if bestRadius < 0 || far < bestRadius {
			best, bestRadius = i, far
		}
	}
	hr := newEmptyIntervals(len(t.pivots))
	for i := range group {
		group[i].parentDist = dm[best*m+i]
		for k := range hr {
			hr[k].union(group[i].hr[k])
		}
	}
	center := make([]float64, t.dim)
	copy(center, group[best].center)
	return routingEntry{center: center, radius: bestRadius, child: &node{leaf: false, routing: group}, hr: hr}
}

func newEmptyIntervals(s int) []Interval {
	hr := make([]Interval, s)
	for i := range hr {
		hr[i] = emptyInterval()
	}
	return hr
}
