// Package srs implements the SRS algorithm of Sun, Wang, Qin, Zhang and
// Lin (PVLDB 2014), the paper's strongest competitor (an MI approach,
// Section 3.1): points are projected into an m-dimensional space and
// indexed with an R-tree; a query repeatedly asks the R-tree for the
// next nearest projected point (incSearch) and verifies it in the
// original space, until either a fraction T of the dataset has been
// accessed or the χ²-based early-termination test passes.
package srs

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lsh"
	"repro/internal/rtree"
	"repro/internal/stats"
	"repro/internal/vec"
)

// Defaults from the paper's Section 6.1 (values quoted for c = 1.5).
const (
	DefaultM    = 15
	DefaultPTau = 0.8107 // early-termination threshold p′_τ
	DefaultT    = 0.4010 // maximum fraction of points accessed
)

// Config controls index construction and query behavior.
type Config struct {
	// M is the projected dimensionality (0 = DefaultM; the paper uses
	// m = 15 for SRS in its experiments, though the original SRS work
	// uses m = 6).
	M int
	// Capacity is the R-tree node capacity (0 = 16).
	Capacity int
	// PTau is the early-termination probability threshold (0 =
	// DefaultPTau).
	PTau float64
	// MaxFraction is the maximum fraction of the dataset examined per
	// query, the paper's T (0 = DefaultT).
	MaxFraction float64
	// Seed drives the projection draw.
	Seed int64
}

// Result is one returned neighbor.
type Result struct {
	ID   int32
	Dist float64
}

// QueryStats reports per-query work.
type QueryStats struct {
	// Accessed is the number of points fetched from the projected-space
	// incremental search (= original-space distance computations).
	Accessed int
	// EarlyTerminated records whether the χ² test stopped the query
	// before the T·n access budget ran out.
	EarlyTerminated bool
}

// Index is an SRS index over a fixed dataset.
type Index struct {
	cfg  Config
	data [][]float64
	proj *lsh.Projection
	tree *rtree.Tree
	chi  stats.ChiSquared
	dim  int
}

// Build constructs the index; data is retained, not copied.
func Build(data [][]float64, cfg Config) (*Index, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("srs: Build requires a non-empty dataset")
	}
	if cfg.M == 0 {
		cfg.M = DefaultM
	}
	if cfg.PTau == 0 {
		cfg.PTau = DefaultPTau
	}
	if cfg.MaxFraction == 0 {
		cfg.MaxFraction = DefaultT
	}
	if cfg.PTau <= 0 || cfg.PTau > 1 {
		return nil, fmt.Errorf("srs: PTau must be in (0,1], got %v", cfg.PTau)
	}
	if cfg.MaxFraction <= 0 || cfg.MaxFraction > 1 {
		return nil, fmt.Errorf("srs: MaxFraction must be in (0,1], got %v", cfg.MaxFraction)
	}
	dim := len(data[0])
	proj, err := lsh.NewProjection(cfg.M, dim, cfg.Seed)
	if err != nil {
		return nil, err
	}
	projected := proj.ProjectAll(data)
	tree, err := rtree.Build(projected, nil, rtree.Config{Capacity: cfg.Capacity})
	if err != nil {
		return nil, err
	}
	return &Index{
		cfg:  cfg,
		data: data,
		proj: proj,
		tree: tree,
		chi:  stats.ChiSquared{K: cfg.M},
		dim:  dim,
	}, nil
}

// Len returns the dataset cardinality.
func (ix *Index) Len() int { return len(ix.data) }

// Dim returns the original dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Tree exposes the underlying R-tree (for the cost model comparison).
func (ix *Index) Tree() *rtree.Tree { return ix.tree }

// KNN answers a (c,k)-ANN query.
func (ix *Index) KNN(q []float64, k int, c float64) ([]Result, error) {
	res, _, err := ix.KNNWithStats(q, k, c)
	return res, err
}

// KNNWithStats runs the SRS-12 style search: fetch projected
// next-nearest points one at a time, verify them in the original space,
// and stop when
//
//   - T·n points have been accessed, or
//   - Ψ_m(Δ′² / d_k²) ≥ p′_τ, where Δ′ is the projected distance of the
//     point just fetched and d_k the current k-th best original
//     distance: once the projected search ball is so large that a point
//     at distance d_k would already have been enumerated with
//     probability p′_τ, continuing is unlikely to improve the top-k.
//
// The approximation ratio c enters through the calibration of p′_τ and
// MaxFraction (the paper quotes p′_τ = 0.8107, T = 0.4010 for c = 1.5);
// the defaults correspond to c = 1.5.
func (ix *Index) KNNWithStats(q []float64, k int, c float64) ([]Result, QueryStats, error) {
	var st QueryStats
	if len(q) != ix.dim {
		return nil, st, fmt.Errorf("srs: query has dimension %d, index expects %d", len(q), ix.dim)
	}
	if k <= 0 {
		return nil, st, fmt.Errorf("srs: k must be positive, got %d", k)
	}
	if c <= 1 {
		return nil, st, fmt.Errorf("srs: approximation ratio must exceed 1, got %v", c)
	}
	qp := ix.proj.Project(q)
	it, err := ix.tree.NewIterator(qp)
	if err != nil {
		return nil, st, err
	}
	maxAccess := int(math.Ceil(ix.cfg.MaxFraction * float64(len(ix.data))))
	if maxAccess < k {
		maxAccess = k
	}

	var topk []Result
	for st.Accessed < maxAccess {
		id, projDist, ok := it.Next()
		if !ok {
			break
		}
		st.Accessed++
		d := vec.L2(q, ix.data[id])
		topk = insertTopK(topk, Result{ID: id, Dist: d}, k)

		if len(topk) == k {
			dk := topk[k-1].Dist
			if dk == 0 {
				st.EarlyTerminated = true
				break
			}
			x := projDist * projDist / (dk * dk)
			if ix.chi.CDF(x) >= ix.cfg.PTau {
				st.EarlyTerminated = true
				break
			}
		}
	}
	return topk, st, nil
}

// insertTopK keeps the k smallest results sorted ascending.
func insertTopK(out []Result, r Result, k int) []Result {
	if len(out) == k && r.Dist >= out[k-1].Dist {
		return out
	}
	i := sort.Search(len(out), func(i int) bool { return out[i].Dist > r.Dist })
	out = append(out, Result{})
	copy(out[i+1:], out[i:])
	out[i] = r
	if len(out) > k {
		out = out[:k]
	}
	return out
}
