package srs

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/vec"
)

func clusteredData(n, d, clusters int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for i := range centers {
		c := make([]float64, d)
		for j := range c {
			c[j] = rng.NormFloat64() * 20
		}
		centers[i] = c
	}
	out := make([][]float64, n)
	for i := range out {
		c := centers[rng.Intn(clusters)]
		p := make([]float64, d)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()*2
		}
		out[i] = p
	}
	return out
}

func exactKNN(data [][]float64, q []float64, k int) []Result {
	out := make([]Result, 0, len(data))
	for i, p := range data {
		out = append(out, Result{ID: int32(i), Dist: vec.L2(q, p)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Error("empty dataset should fail")
	}
	data := clusteredData(20, 6, 2, 1)
	if _, err := Build(data, Config{PTau: 1.5}); err == nil {
		t.Error("PTau > 1 should fail")
	}
	if _, err := Build(data, Config{MaxFraction: -0.1}); err == nil {
		t.Error("negative MaxFraction should fail")
	}
}

func TestDefaults(t *testing.T) {
	data := clusteredData(100, 8, 3, 2)
	ix, err := Build(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.cfg.M != DefaultM || ix.cfg.PTau != DefaultPTau || ix.cfg.MaxFraction != DefaultT {
		t.Errorf("defaults not applied: %+v", ix.cfg)
	}
	if ix.Len() != 100 || ix.Dim() != 8 {
		t.Errorf("Len/Dim: %d %d", ix.Len(), ix.Dim())
	}
	if ix.Tree() == nil {
		t.Error("Tree accessor nil")
	}
}

func TestKNNValidation(t *testing.T) {
	data := clusteredData(50, 6, 2, 3)
	ix, _ := Build(data, Config{})
	if _, err := ix.KNN([]float64{1}, 5, 1.5); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := ix.KNN(data[0], 0, 1.5); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := ix.KNN(data[0], 5, 1.0); err == nil {
		t.Error("c=1 should fail")
	}
}

func TestKNNFindsSelf(t *testing.T) {
	data := clusteredData(400, 16, 5, 4)
	ix, _ := Build(data, Config{Seed: 7})
	for i := 0; i < 15; i++ {
		res, err := ix.KNN(data[i*13], 1, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].Dist != 0 {
			t.Errorf("query %d: %+v", i, res)
		}
	}
}

func TestKNNQuality(t *testing.T) {
	data := clusteredData(2000, 24, 10, 5)
	ix, _ := Build(data, Config{Seed: 3})
	rng := rand.New(rand.NewSource(6))
	const k, queries = 10, 30
	var recallSum float64
	for qi := 0; qi < queries; qi++ {
		q := vec.Clone(data[rng.Intn(len(data))])
		for j := range q {
			q[j] += rng.NormFloat64() * 0.5
		}
		got, err := ix.KNN(q, k, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		exact := exactKNN(data, q, k)
		ids := make(map[int32]bool)
		for _, e := range exact {
			ids[e.ID] = true
		}
		hit := 0
		for _, g := range got {
			if ids[g.ID] {
				hit++
			}
		}
		recallSum += float64(hit) / k
	}
	if recall := recallSum / queries; recall < 0.75 {
		t.Errorf("mean recall %v below 0.75", recall)
	}
}

func TestAccessBudgetRespected(t *testing.T) {
	data := clusteredData(1000, 12, 4, 8)
	ix, _ := Build(data, Config{Seed: 2, MaxFraction: 0.1, PTau: 0.9999999})
	q := make([]float64, 12)
	_, st, err := ix.KNNWithStats(q, 5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accessed > 100 {
		t.Errorf("accessed %d > T·n = 100", st.Accessed)
	}
}

func TestEarlyTermination(t *testing.T) {
	// With a generous threshold and an easy query (a data point), SRS
	// should terminate before exhausting its T·n budget.
	data := clusteredData(2000, 16, 8, 9)
	ix, _ := Build(data, Config{Seed: 4})
	_, st, err := ix.KNNWithStats(data[100], 5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !st.EarlyTerminated {
		t.Error("expected early termination on an easy query")
	}
	if st.Accessed >= int(DefaultT*2000) {
		t.Errorf("accessed %d, expected early stop", st.Accessed)
	}
}

func TestResultsSortedUniqueExactDistances(t *testing.T) {
	data := clusteredData(600, 10, 4, 10)
	ix, _ := Build(data, Config{Seed: 5})
	rng := rand.New(rand.NewSource(11))
	for qi := 0; qi < 10; qi++ {
		q := make([]float64, 10)
		for j := range q {
			q[j] = rng.NormFloat64() * 15
		}
		res, err := ix.KNN(q, 12, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int32]bool)
		for i, r := range res {
			if seen[r.ID] {
				t.Fatal("duplicate result")
			}
			seen[r.ID] = true
			if i > 0 && res[i].Dist < res[i-1].Dist {
				t.Fatal("unsorted results")
			}
			if math.Abs(r.Dist-vec.L2(q, data[r.ID])) > 1e-9 {
				t.Fatal("wrong reported distance")
			}
		}
	}
}

func TestInsertTopK(t *testing.T) {
	var out []Result
	for _, d := range []float64{5, 3, 8, 1, 9, 2} {
		out = insertTopK(out, Result{ID: int32(d), Dist: d}, 3)
	}
	if len(out) != 3 || out[0].Dist != 1 || out[1].Dist != 2 || out[2].Dist != 3 {
		t.Errorf("insertTopK = %+v", out)
	}
	// Rejecting an item worse than the current k-th.
	out2 := insertTopK(out, Result{ID: 99, Dist: 100}, 3)
	if len(out2) != 3 || out2[2].Dist != 3 {
		t.Errorf("should reject worse item: %+v", out2)
	}
}
