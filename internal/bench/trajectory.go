package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark-trajectory tooling: parse `go test -bench` output into the
// BENCH_<pr>.json records CI emits, so the engine's headline numbers
// (ns/op, B/op, allocs/op, and the pdc/op projected-distance metric the
// query benchmarks report) accumulate as machine-readable data points
// PR over PR instead of living only in CHANGES.md prose.

// BenchResult is one benchmark line: the benchmark's name (stripped of
// the Benchmark prefix and -GOMAXPROCS suffix), its iteration count,
// and every reported metric keyed by unit (ns/op, B/op, allocs/op,
// pdc/op, ...).
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Trajectory is one whole benchmark run.
type Trajectory struct {
	// PR tags the stacked-PR sequence number the run belongs to.
	PR int `json:"pr"`
	// Context carries goos/goarch/cpu lines from the bench header.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks holds one record per benchmark line, in output order.
	Benchmarks []BenchResult `json:"benchmarks"`
}

// ParseBenchOutput reads `go test -bench` output and collects every
// benchmark line plus the goos/goarch/pkg/cpu context header.
func ParseBenchOutput(r io.Reader) (*Trajectory, error) {
	tr := &Trajectory{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			tr.Context[k] = strings.TrimSpace(v)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		res, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		tr.Benchmarks = append(tr.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.Benchmarks) == 0 {
		return nil, fmt.Errorf("bench: no benchmark lines found")
	}
	return tr, nil
}

// parseBenchLine splits one "BenchmarkName-P  N  v1 unit1  v2 unit2 …"
// line.
func parseBenchLine(line string) (BenchResult, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return BenchResult{}, fmt.Errorf("bench: malformed benchmark line %q", line)
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return BenchResult{}, fmt.Errorf("bench: iteration count in %q: %w", line, err)
	}
	res := BenchResult{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return BenchResult{}, fmt.Errorf("bench: metric value in %q: %w", line, err)
		}
		res.Metrics[f[i+1]] = v
	}
	return res, nil
}

// WriteTrajectory emits the run as indented JSON.
func WriteTrajectory(w io.Writer, tr *Trajectory) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}
