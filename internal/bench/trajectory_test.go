package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkQueryK50-1         	    7401	    304703 ns/op	      1859 B/op	       2 allocs/op	      2241 pdc/op
BenchmarkQueryK50Churned-1  	   10000	    220993 ns/op	      1792 B/op	       2 allocs/op	      1651 pdc/op
BenchmarkKNNBatch-1         	     302	   8137199 ns/op	      224100 pdc/op	 1257019 B/op	     386 allocs/op
PASS
ok  	repro	9.986s
`

func TestParseBenchOutput(t *testing.T) {
	tr, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Context["cpu"]; !strings.Contains(got, "Xeon") {
		t.Fatalf("cpu context = %q", got)
	}
	if len(tr.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(tr.Benchmarks))
	}
	q := tr.Benchmarks[0]
	if q.Name != "QueryK50" || q.Iterations != 7401 {
		t.Fatalf("first record = %+v", q)
	}
	for unit, want := range map[string]float64{
		"ns/op": 304703, "B/op": 1859, "allocs/op": 2, "pdc/op": 2241,
	} {
		if got := q.Metrics[unit]; got != want {
			t.Fatalf("QueryK50 %s = %v, want %v", unit, got, want)
		}
	}
	if got := tr.Benchmarks[2].Metrics["pdc/op"]; got != 224100 {
		t.Fatalf("KNNBatch pdc/op = %v, want 224100", got)
	}
}

func TestParseBenchOutputErrors(t *testing.T) {
	if _, err := ParseBenchOutput(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("accepted output without benchmark lines")
	}
	if _, err := ParseBenchOutput(strings.NewReader("BenchmarkX-1 12 nonsense ns/op\n")); err == nil {
		t.Fatal("accepted a non-numeric metric value")
	}
	if _, err := ParseBenchOutput(strings.NewReader("BenchmarkX-1 12 34\n")); err == nil {
		t.Fatal("accepted a value without a unit")
	}
}

func TestWriteTrajectoryRoundTrips(t *testing.T) {
	tr, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	tr.PR = 4
	var buf bytes.Buffer
	if err := WriteTrajectory(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var back Trajectory
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.PR != 4 || len(back.Benchmarks) != len(tr.Benchmarks) {
		t.Fatalf("round-trip = %+v", back)
	}
	if back.Benchmarks[0].Metrics["ns/op"] != tr.Benchmarks[0].Metrics["ns/op"] {
		t.Fatal("metrics did not survive the round trip")
	}
}
