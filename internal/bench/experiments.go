package bench

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/metrics"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/estimator"
)

// Workload bundles a dataset with queries and exact ground truth.
type Workload struct {
	Dataset *dataset.Dataset
	Queries [][]float64
	// Truth holds exact neighbors per query, at least MaxK deep.
	Truth [][]dataset.Neighbor
	MaxK  int
}

// NewWorkload generates queries and ground truth for a dataset.
func NewWorkload(ds *dataset.Dataset, numQueries, maxK int, seed int64) (*Workload, error) {
	if numQueries < 1 || maxK < 1 {
		return nil, fmt.Errorf("bench: need positive numQueries and maxK")
	}
	qs := ds.Queries(numQueries, seed)
	truth, err := dataset.GroundTruth(ds.Points, qs, maxK)
	if err != nil {
		return nil, err
	}
	return &Workload{Dataset: ds, Queries: qs, Truth: truth, MaxK: maxK}, nil
}

// truthAt returns the first k exact neighbors of query qi as metric
// neighbors.
func (w *Workload) truthAt(qi, k int) []metrics.Neighbor {
	row := w.Truth[qi]
	if k > len(row) {
		k = len(row)
	}
	out := make([]metrics.Neighbor, k)
	for i := 0; i < k; i++ {
		out[i] = metrics.Neighbor{ID: row[i].ID, Dist: row[i].Dist}
	}
	return out
}

// Row is one measurement: an algorithm evaluated at one setting.
type Row struct {
	Algo    string
	K       int
	C       float64
	TimeMS  float64 // mean per-query latency
	Ratio   float64 // mean overall ratio (Eq. 11)
	Recall  float64 // mean recall (Eq. 12)
	Queries int
}

// Evaluate runs every query of the workload through the algorithm at
// the given k and aggregates the paper's three metrics.
func Evaluate(a Algorithm, w *Workload, k int) (Row, error) {
	if k > w.MaxK {
		return Row{}, fmt.Errorf("bench: k=%d exceeds workload truth depth %d", k, w.MaxK)
	}
	row := Row{Algo: a.Name(), K: k, Queries: len(w.Queries)}
	var timer metrics.Timer
	var ratioSum, recallSum float64
	for qi, q := range w.Queries {
		start := time.Now()
		res, err := a.KNN(q, k)
		timer.Observe(time.Since(start))
		if err != nil {
			return Row{}, fmt.Errorf("bench: %s query %d: %w", a.Name(), qi, err)
		}
		truth := w.truthAt(qi, k)
		ratio, err := metrics.OverallRatio(res, truth)
		if err != nil {
			return Row{}, err
		}
		recall, err := metrics.Recall(res, truth)
		if err != nil {
			return Row{}, err
		}
		ratioSum += ratio
		recallSum += recall
	}
	n := float64(len(w.Queries))
	row.TimeMS = timer.Milliseconds().Mean
	row.Ratio = ratioSum / n
	row.Recall = recallSum / n
	return row, nil
}

// Overview is Table 4 for one dataset: all algorithms at fixed k and c.
func Overview(w *Workload, names []AlgoName, k int, cfg BuildConfig) ([]Row, error) {
	algos, err := BuildAllForDataset(names, w.Dataset, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]Row, 0, len(algos))
	for _, a := range algos {
		row, err := Evaluate(a, w, k)
		if err != nil {
			return nil, err
		}
		row.C = cfg.C
		out = append(out, row)
	}
	return out, nil
}

// VaryK is Figs. 7–9: every algorithm evaluated across k values.
// Indexes are built once and reused across k (as in the paper).
func VaryK(w *Workload, names []AlgoName, ks []int, cfg BuildConfig) ([]Row, error) {
	algos, err := BuildAllForDataset(names, w.Dataset, cfg)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, a := range algos {
		for _, k := range ks {
			row, err := Evaluate(a, w, k)
			if err != nil {
				return nil, err
			}
			row.C = cfg.C
			out = append(out, row)
		}
	}
	return out, nil
}

// Tradeoff is Figs. 10–11: recall–time and ratio–time curves obtained
// by sweeping each algorithm's quality knob — the approximation ratio c
// for PM-LSH, R-LSH, SRS and QALSH, the probe budget for Multi-Probe,
// and the scanned fraction for LScan.
func Tradeoff(w *Workload, k int, cs []float64, probes []int, fractions []float64, cfg BuildConfig) ([]Row, error) {
	var out []Row

	// PM-LSH, R-LSH and SRS: c is a query-time parameter; build once.
	for _, name := range []AlgoName{PMLSH, RLSH} {
		a, err := BuildAlgoForDataset(name, w.Dataset, cfg)
		if err != nil {
			return nil, err
		}
		ad := a.(*pmlshAdapter)
		for _, c := range cs {
			ad.SetC(c)
			row, err := Evaluate(a, w, k)
			if err != nil {
				return nil, err
			}
			row.C = c
			out = append(out, row)
		}
	}
	{
		a, err := BuildAlgo(SRS, w.Dataset.Points, cfg)
		if err != nil {
			return nil, err
		}
		ad := a.(*srsAdapter)
		for _, c := range cs {
			ad.c = c
			row, err := Evaluate(a, w, k)
			if err != nil {
				return nil, err
			}
			row.C = c
			out = append(out, row)
		}
	}
	// QALSH bakes c into the index: rebuild per c.
	for _, c := range cs {
		qcfg := cfg
		qcfg.C = c
		a, err := BuildAlgo(QALSH, w.Dataset.Points, qcfg)
		if err != nil {
			return nil, err
		}
		row, err := Evaluate(a, w, k)
		if err != nil {
			return nil, err
		}
		row.C = c
		out = append(out, row)
	}
	// Multi-Probe: sweep probes.
	for _, p := range probes {
		mcfg := cfg
		mcfg.MultiProbeProbes = p
		a, err := BuildAlgo(MultiProbe, w.Dataset.Points, mcfg)
		if err != nil {
			return nil, err
		}
		row, err := Evaluate(a, w, k)
		if err != nil {
			return nil, err
		}
		row.C = float64(p) // the knob value, reported in the C column
		out = append(out, row)
	}
	// LScan: sweep fraction.
	for _, f := range fractions {
		lcfg := cfg
		lcfg.LScanFraction = f
		a, err := BuildAlgo(LScan, w.Dataset.Points, lcfg)
		if err != nil {
			return nil, err
		}
		row, err := Evaluate(a, w, k)
		if err != nil {
			return nil, err
		}
		row.C = f
		out = append(out, row)
	}
	return out, nil
}

// SweepPoint is one Fig. 6 sample.
type SweepPoint struct {
	Param  string // "s" or "m"
	Value  int
	TimeMS float64
	Ratio  float64
	Recall float64
}

// ParamSweep is Fig. 6: PM-LSH query time, recall and overall ratio as
// the pivot count s and the hash count m vary.
func ParamSweep(w *Workload, k int, svals, mvals []int, cfg BuildConfig) ([]SweepPoint, error) {
	cfg.fill()
	var out []SweepPoint
	eval := func(ccfg core.Config, param string, value int) error {
		ix, err := core.BuildFromStore(w.Dataset.Store, ccfg)
		if err != nil {
			return err
		}
		a := &pmlshAdapter{ix: ix, c: cfg.C, name: string(PMLSH)}
		row, err := Evaluate(a, w, k)
		if err != nil {
			return err
		}
		out = append(out, SweepPoint{Param: param, Value: value,
			TimeMS: row.TimeMS, Ratio: row.Ratio, Recall: row.Recall})
		return nil
	}
	for _, s := range svals {
		ccfg := core.Config{Seed: cfg.Seed, NumPivots: s, ExplicitZeroPivots: s == 0}
		if err := eval(ccfg, "s", s); err != nil {
			return nil, err
		}
	}
	for _, m := range mvals {
		ccfg := core.Config{Seed: cfg.Seed, M: m}
		if err := eval(ccfg, "m", m); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CostModel is Table 2 for one dataset: projected-space tree costs.
func CostModel(ds *dataset.Dataset, m int, measureQueries int, seed int64) (costmodel.Comparison, error) {
	if m == 0 {
		m = 15
	}
	proj, err := lsh.NewProjection(m, ds.Spec.D, seed)
	if err != nil {
		return costmodel.Comparison{}, err
	}
	projected := proj.ProjectAll(ds.Points)
	return costmodel.Compare(ds.Spec.Name, projected, 5, 16, 0, measureQueries, seed)
}

// DatasetStats is Table 3 for one dataset.
func DatasetStats(ds *dataset.Dataset, seed int64) (dataset.Stats, error) {
	return dataset.ComputeStats(ds.Points, dataset.StatsConfig{Seed: seed})
}

// EstimatorStudy is Fig. 3: the four estimators on a Trevi-like sample.
func EstimatorStudy(ds *dataset.Dataset, numQueries int, ts []int, k int, seed int64) (estimator.Curves, error) {
	qs := ds.Queries(numQueries, seed)
	return estimator.Run(ds.Points, qs, ts, estimator.Config{K: k, Seed: seed})
}
