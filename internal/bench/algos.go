// Package bench is the experiment harness: it builds every algorithm
// from the paper's evaluation over a common workload and regenerates
// each table and figure.
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/e2lsh"
	"repro/internal/lscan"
	"repro/internal/metrics"
	"repro/internal/multiprobe"
	"repro/internal/qalsh"
	"repro/internal/srs"
	"repro/internal/vec"
)

// Algorithm is the common query interface the harness drives.
type Algorithm interface {
	// Name returns the display name used in tables.
	Name() string
	// KNN answers a k-nearest-neighbor query.
	KNN(q []float64, k int) ([]metrics.Neighbor, error)
}

// AlgoName enumerates the evaluated algorithms.
type AlgoName string

// The six algorithms of Table 4, plus the textbook E2LSH baseline
// (Section 2.2) every modern method refines.
const (
	PMLSH      AlgoName = "PM-LSH"
	SRS        AlgoName = "SRS"
	QALSH      AlgoName = "QALSH"
	MultiProbe AlgoName = "Multi-Probe"
	RLSH       AlgoName = "R-LSH"
	E2LSH      AlgoName = "E2LSH"
	LScan      AlgoName = "LScan"
)

// AllAlgos lists the algorithms in the paper's column order, with the
// E2LSH lineage baseline before the exact-scan reference.
func AllAlgos() []AlgoName {
	return []AlgoName{PMLSH, SRS, QALSH, MultiProbe, RLSH, E2LSH, LScan}
}

// BuildConfig carries the shared build parameters.
type BuildConfig struct {
	// C is the approximation ratio used at query time (and, for QALSH,
	// baked into the index). 0 = 1.5, the evaluation default.
	C float64
	// Seed drives every randomized component.
	Seed int64
	// QALSHMaxHashes caps QALSH's derived hash count (0 = 200).
	QALSHMaxHashes int
	// MultiProbeProbes is the per-table probe budget (0 = default).
	MultiProbeProbes int
	// LScanFraction is the scanned fraction (0 = 0.7).
	LScanFraction float64
}

func (b *BuildConfig) fill() {
	if b.C == 0 {
		b.C = 1.5
	}
}

// BuildAlgo constructs one algorithm over the dataset.
func BuildAlgo(name AlgoName, data [][]float64, cfg BuildConfig) (Algorithm, error) {
	cfg.fill()
	switch name {
	case PMLSH:
		ix, err := core.Build(data, core.Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		return &pmlshAdapter{ix: ix, c: cfg.C, name: string(PMLSH)}, nil
	case RLSH:
		ix, err := core.Build(data, core.Config{Seed: cfg.Seed, UseRTree: true})
		if err != nil {
			return nil, err
		}
		return &pmlshAdapter{ix: ix, c: cfg.C, name: string(RLSH)}, nil
	case SRS:
		ix, err := srs.Build(data, srs.Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		return &srsAdapter{ix: ix, c: cfg.C}, nil
	case QALSH:
		ix, err := qalsh.Build(data, qalsh.Config{
			C: cfg.C, Seed: cfg.Seed, MaxHashes: cfg.QALSHMaxHashes,
		})
		if err != nil {
			return nil, err
		}
		return &qalshAdapter{ix: ix}, nil
	case MultiProbe:
		ix, err := multiprobe.Build(data, multiprobe.Config{
			Seed: cfg.Seed, Probes: cfg.MultiProbeProbes,
		})
		if err != nil {
			return nil, err
		}
		return &mpAdapter{ix: ix}, nil
	case E2LSH:
		// The basic scheme needs a base radius its tables are tuned
		// for; the natural choice is the expected NN distance, which a
		// small sampled self-join estimates well enough for tuning.
		ix, err := e2lsh.Build(data, e2lsh.Config{
			R: estimateNNDistance(data, cfg.Seed), C: cfg.C, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return &e2lshAdapter{ix: ix}, nil
	case LScan:
		sc, err := lscan.New(data, lscan.Config{Seed: cfg.Seed, Fraction: cfg.LScanFraction})
		if err != nil {
			return nil, err
		}
		return &lscanAdapter{sc: sc}, nil
	default:
		return nil, fmt.Errorf("bench: unknown algorithm %q", name)
	}
}

// BuildAlgoForDataset is BuildAlgo for a generated dataset: PM-LSH and
// R-LSH build directly over the dataset's contiguous store
// (core.BuildFromStore), skipping the per-row copy BuildAlgo's
// [][]float64 path pays. The harness never mutates datasets or inserts
// into the built indexes, which is what sharing the store requires.
func BuildAlgoForDataset(name AlgoName, ds *dataset.Dataset, cfg BuildConfig) (Algorithm, error) {
	switch name {
	case PMLSH, RLSH:
		cfg.fill()
		ix, err := core.BuildFromStore(ds.Store, core.Config{Seed: cfg.Seed, UseRTree: name == RLSH})
		if err != nil {
			return nil, err
		}
		return &pmlshAdapter{ix: ix, c: cfg.C, name: string(name)}, nil
	default:
		return BuildAlgo(name, ds.Points, cfg)
	}
}

// BuildAll constructs the requested algorithms (nil = all six).
func BuildAll(names []AlgoName, data [][]float64, cfg BuildConfig) ([]Algorithm, error) {
	if names == nil {
		names = AllAlgos()
	}
	out := make([]Algorithm, 0, len(names))
	for _, n := range names {
		a, err := BuildAlgo(n, data, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", n, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// BuildAllForDataset is BuildAll via BuildAlgoForDataset.
func BuildAllForDataset(names []AlgoName, ds *dataset.Dataset, cfg BuildConfig) ([]Algorithm, error) {
	if names == nil {
		names = AllAlgos()
	}
	out := make([]Algorithm, 0, len(names))
	for _, n := range names {
		a, err := BuildAlgoForDataset(n, ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", n, err)
		}
		out = append(out, a)
	}
	return out, nil
}

type pmlshAdapter struct {
	ix   *core.Index
	c    float64
	name string
}

func (a *pmlshAdapter) Name() string { return a.name }
func (a *pmlshAdapter) KNN(q []float64, k int) ([]metrics.Neighbor, error) {
	res, err := a.ix.KNN(q, k, a.c)
	return convertCore(res), err
}

// SetC changes the query-time approximation ratio (tradeoff curves).
func (a *pmlshAdapter) SetC(c float64) { a.c = c }

type srsAdapter struct {
	ix *srs.Index
	c  float64
}

func (a *srsAdapter) Name() string { return string(SRS) }
func (a *srsAdapter) KNN(q []float64, k int) ([]metrics.Neighbor, error) {
	res, err := a.ix.KNN(q, k, a.c)
	out := make([]metrics.Neighbor, len(res))
	for i, r := range res {
		out[i] = metrics.Neighbor{ID: r.ID, Dist: r.Dist}
	}
	return out, err
}

type qalshAdapter struct{ ix *qalsh.Index }

func (a *qalshAdapter) Name() string { return string(QALSH) }
func (a *qalshAdapter) KNN(q []float64, k int) ([]metrics.Neighbor, error) {
	res, err := a.ix.KNN(q, k)
	out := make([]metrics.Neighbor, len(res))
	for i, r := range res {
		out[i] = metrics.Neighbor{ID: r.ID, Dist: r.Dist}
	}
	return out, err
}

// estimateNNDistance estimates the expected nearest-neighbor distance
// by an exact self-join over a bounded random sample: for each sampled
// point, the distance to its nearest other sample member, averaged.
// Deterministic given the seed; O(sample²·d) work. NewCPWorkload
// (closestpair.go) keeps its own probe-vs-full-corpus estimator on
// purpose: that one DEFINES the planted-duplicate workload, so its
// sampling cannot change without shifting every CP benchmark, while
// this one only tunes E2LSH's base radius.
func estimateNNDistance(data [][]float64, seed int64) float64 {
	const maxSample = 256
	rng := rand.New(rand.NewSource(seed + 77))
	sample := data
	if len(data) > maxSample {
		sample = make([][]float64, maxSample)
		for i, j := range rng.Perm(len(data))[:maxSample] {
			sample[i] = data[j]
		}
	}
	if len(sample) < 2 {
		return 1
	}
	var sum float64
	counted := 0
	for i, p := range sample {
		best := math.Inf(1)
		for j, q := range sample {
			if i == j {
				continue
			}
			if d2 := vec.SquaredL2Bounded(p, q, best); d2 < best {
				best = d2
			}
		}
		if best > 0 && !math.IsInf(best, 1) {
			sum += math.Sqrt(best)
			counted++
		}
	}
	if counted == 0 || sum == 0 {
		return 1
	}
	return sum / float64(counted)
}

type e2lshAdapter struct{ ix *e2lsh.Index }

func (a *e2lshAdapter) Name() string { return string(E2LSH) }
func (a *e2lshAdapter) KNN(q []float64, k int) ([]metrics.Neighbor, error) {
	res, err := a.ix.KNN(q, k)
	out := make([]metrics.Neighbor, len(res))
	for i, r := range res {
		out[i] = metrics.Neighbor{ID: r.ID, Dist: r.Dist}
	}
	return out, err
}

type mpAdapter struct{ ix *multiprobe.Index }

func (a *mpAdapter) Name() string { return string(MultiProbe) }
func (a *mpAdapter) KNN(q []float64, k int) ([]metrics.Neighbor, error) {
	res, err := a.ix.KNN(q, k)
	out := make([]metrics.Neighbor, len(res))
	for i, r := range res {
		out[i] = metrics.Neighbor{ID: r.ID, Dist: r.Dist}
	}
	return out, err
}

type lscanAdapter struct{ sc *lscan.Scanner }

func (a *lscanAdapter) Name() string { return string(LScan) }
func (a *lscanAdapter) KNN(q []float64, k int) ([]metrics.Neighbor, error) {
	res, err := a.sc.KNN(q, k)
	out := make([]metrics.Neighbor, len(res))
	for i, r := range res {
		out[i] = metrics.Neighbor{ID: r.ID, Dist: r.Dist}
	}
	return out, err
}

func convertCore(res []core.Result) []metrics.Neighbor {
	out := make([]metrics.Neighbor, len(res))
	for i, r := range res {
		out[i] = metrics.Neighbor{ID: r.ID, Dist: r.Dist}
	}
	return out
}
