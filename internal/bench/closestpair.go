package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lscan"
	"repro/internal/vec"
)

// Closest-pair experiment support: a dedup-shaped workload (a corpus
// with planted near-copies), exact ground truth, the CP engine
// measurements, and the naive per-point probing loop the CP subsystem
// replaces (one BallCover probe per corpus point — the pattern
// examples/dedup used before the self-join existed).

// CPWorkload is a corpus with planted near-duplicate pairs.
type CPWorkload struct {
	Points [][]float64
	// Planted maps each planted pair (orig < copy) to true.
	Planted map[[2]int32]bool
	// DupRadius is the perturbation scale: every planted copy lies
	// within DupRadius of its original.
	DupRadius float64
}

// NewCPWorkload plants numDups near-copies of random corpus points,
// each perturbed by at most a quarter of the corpus's typical
// nearest-neighbor distance (measured exactly on a sample), and returns
// the union. The planted copies are appended after the originals.
func NewCPWorkload(ds *dataset.Dataset, numDups int, seed int64) (*CPWorkload, error) {
	if numDups < 1 {
		return nil, fmt.Errorf("bench: need at least one planted duplicate")
	}
	base := ds.Points
	if len(base) < 2 {
		return nil, fmt.Errorf("bench: corpus too small")
	}
	rng := rand.New(rand.NewSource(seed))

	// Exact NN-distance scale from a sample of corpus points.
	const probes = 30
	var nnSum float64
	for i := 0; i < probes; i++ {
		q := base[rng.Intn(len(base))]
		best := -1.0
		for _, p := range base {
			if &p[0] == &q[0] {
				continue
			}
			d := vec.L2(q, p)
			if best < 0 || d < best {
				best = d
			}
		}
		nnSum += best
	}
	dupRadius := 0.25 * nnSum / probes

	pts := make([][]float64, len(base), len(base)+numDups)
	copy(pts, base)
	planted := make(map[[2]int32]bool, numDups)
	perDim := dupRadius / 2 / math.Sqrt(float64(len(base[0])))
	for i := 0; i < numDups; i++ {
		src := rng.Intn(len(base))
		dup := make([]float64, len(base[src]))
		for j := range dup {
			dup[j] = base[src][j] + rng.NormFloat64()*perDim
		}
		planted[[2]int32{int32(src), int32(len(pts))}] = true
		pts = append(pts, dup)
	}
	return &CPWorkload{Points: pts, Planted: planted, DupRadius: dupRadius}, nil
}

// CPRow is one closest-pair measurement.
type CPRow struct {
	Algo   string
	K      int
	C      float64
	TimeMS float64
	// Ratio is the mean per-rank distance ratio against the exact k
	// closest pairs (1.0 = exact; ranks with exact distance 0 count 1
	// when matched exactly and are skipped otherwise).
	Ratio float64
}

// ClosestPairStudy builds a PM-LSH index over the workload and measures
// the serial and parallel closest-pair engines against exact brute
// force.
func ClosestPairStudy(w *CPWorkload, k int, c float64, seed int64) ([]CPRow, error) {
	ix, err := core.Build(w.Points, core.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	exact, err := lscan.ClosestPairs(w.Points, k)
	if err != nil {
		return nil, err
	}
	var out []CPRow
	for _, par := range []bool{false, true} {
		start := time.Now()
		var pairs []core.Pair
		if par {
			pairs, err = ix.ClosestPairsParallel(k, c)
		} else {
			pairs, err = ix.ClosestPairs(k, c)
		}
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		name := "ClosestPairs"
		if par {
			name = "ClosestPairsParallel"
		}
		out = append(out, CPRow{
			Algo:   name,
			K:      k,
			C:      c,
			TimeMS: float64(elapsed.Nanoseconds()) / 1e6,
			Ratio:  cpRatio(pairs, exact),
		})
	}
	return out, nil
}

// cpRatio is the overall-ratio analog for pair results. A rank whose
// exact distance is zero (a duplicate pair) but whose returned
// distance is not counts as an unbounded violation — duplicates are
// the CP engine's primary workload, so missing one must fail the
// ratio gate, not be skipped.
func cpRatio(got []core.Pair, exact []lscan.PairResult) float64 {
	if len(got) == 0 || len(exact) == 0 {
		return 0
	}
	var sum float64
	used := 0
	for i := range exact {
		if i >= len(got) {
			break
		}
		if exact[i].Dist == 0 {
			if got[i].Dist != 0 {
				return math.Inf(1)
			}
			sum++
			used++
			continue
		}
		sum += got[i].Dist / exact[i].Dist
		used++
	}
	if used == 0 {
		return 1
	}
	return sum / float64(used)
}

// NaiveDedupBallCover is the pre-subsystem dedup pattern: one
// (r,c)-BallCover probe per corpus point against the index. It is the
// cost baseline the self-join engine is benchmarked against (n
// independent probes re-project and re-traverse the tree once per
// point). It returns the number of probes that reported a hit.
func NaiveDedupBallCover(ix *core.Index, pts [][]float64, r, c float64) (int, error) {
	hits := 0
	for _, p := range pts {
		h, err := ix.BallCover(p, r, c)
		if err != nil {
			return hits, err
		}
		if h != nil {
			hits++
		}
	}
	return hits, nil
}
