package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/estimator"
)

// PrintOverview writes a Table 4 block for one dataset.
func PrintOverview(w io.Writer, dsName string, rows []Row) {
	fmt.Fprintf(w, "== %s (k=%d, c=%.2f) ==\n", dsName, rows[0].K, rows[0].C)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Algorithm\tQuery Time (ms)\tOverall Ratio\tRecall")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.4f\t%.4f\n", r.Algo, r.TimeMS, r.Ratio, r.Recall)
	}
	tw.Flush()
}

// PrintVaryK writes Fig. 7–9 series grouped by algorithm.
func PrintVaryK(w io.Writer, dsName string, rows []Row) {
	fmt.Fprintf(w, "== %s: metrics vs k ==\n", dsName)
	byAlgo := map[string][]Row{}
	var order []string
	for _, r := range rows {
		if _, ok := byAlgo[r.Algo]; !ok {
			order = append(order, r.Algo)
		}
		byAlgo[r.Algo] = append(byAlgo[r.Algo], r)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Algorithm\tk\tTime (ms)\tRatio\tRecall")
	for _, name := range order {
		rs := byAlgo[name]
		sort.Slice(rs, func(i, j int) bool { return rs[i].K < rs[j].K })
		for _, r := range rs {
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.4f\t%.4f\n", r.Algo, r.K, r.TimeMS, r.Ratio, r.Recall)
		}
	}
	tw.Flush()
}

// PrintTradeoff writes Fig. 10–11 curves (recall–time and ratio–time).
func PrintTradeoff(w io.Writer, dsName string, rows []Row) {
	fmt.Fprintf(w, "== %s: quality–time tradeoff (knob = c / probes / fraction) ==\n", dsName)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Algorithm\tKnob\tTime (ms)\tRecall\tRatio")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3g\t%.3f\t%.4f\t%.4f\n", r.Algo, r.C, r.TimeMS, r.Recall, r.Ratio)
	}
	tw.Flush()
}

// PrintSweep writes Fig. 6 series.
func PrintSweep(w io.Writer, dsName string, pts []SweepPoint) {
	fmt.Fprintf(w, "== %s: PM-LSH parameter sweep ==\n", dsName)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Param\tValue\tTime (ms)\tRecall\tRatio")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.4f\t%.4f\n", p.Param, p.Value, p.TimeMS, p.Recall, p.Ratio)
	}
	tw.Flush()
}

// PrintCostModel writes Table 2 rows.
func PrintCostModel(w io.Writer, rows []costmodel.Comparison) {
	fmt.Fprintln(w, "== Table 2: computation cost (CC) of PM-tree vs R-tree ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tPM-tree CC\tR-tree CC\tReduction\tMeasured PM\tMeasured R")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f%%\t%.0f\t%.0f\n",
			r.Dataset, r.PMTreeCC, r.RTreeCC, r.ReductionPc, r.MeasuredPM, r.MeasuredR)
	}
	tw.Flush()
}

// PrintDatasetStats writes Table 3 rows.
func PrintDatasetStats(w io.Writer, names []string, stats []dataset.Stats) {
	fmt.Fprintln(w, "== Table 3: dataset statistics ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tn\td\tHV\tRC\tLID")
	for i, s := range stats {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.2f\t%.1f\n", names[i], s.N, s.D, s.HV, s.RC, s.LID)
	}
	tw.Flush()
}

// PrintEstimatorCurves writes Fig. 3 series.
func PrintEstimatorCurves(w io.Writer, curves estimator.Curves) {
	fmt.Fprintln(w, "== Fig. 3: estimator quality vs probe budget T ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Estimator\tT\tRecall\tRatio")
	for _, kind := range estimator.Kinds() {
		for _, p := range curves[kind] {
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.4f\n", kind, p.T, p.Recall, p.Ratio)
		}
	}
	tw.Flush()
}
