package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func smallWorkload(t *testing.T, n int) *Workload {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "bench", N: n, D: 32, Clusters: 8, SubspaceDim: 6, RCTarget: 2.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(ds, 10, 20, 12)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorkloadValidation(t *testing.T) {
	ds, _ := dataset.Generate(dataset.Spec{
		Name: "x", N: 100, D: 8, Clusters: 2, SubspaceDim: 2, RCTarget: 2, Seed: 1,
	})
	if _, err := NewWorkload(ds, 0, 5, 1); err == nil {
		t.Error("0 queries should fail")
	}
	if _, err := NewWorkload(ds, 5, 0, 1); err == nil {
		t.Error("0 maxK should fail")
	}
	w, err := NewWorkload(ds, 3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 3 || len(w.Truth) != 3 || len(w.Truth[0]) != 5 {
		t.Errorf("workload shape wrong")
	}
}

func TestBuildAlgoUnknown(t *testing.T) {
	w := smallWorkload(t, 300)
	if _, err := BuildAlgo("nope", w.Dataset.Points, BuildConfig{}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestBuildAllNames(t *testing.T) {
	w := smallWorkload(t, 300)
	algos, err := BuildAll(nil, w.Dataset.Points, BuildConfig{Seed: 1, QALSHMaxHashes: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(algos) != len(AllAlgos()) {
		t.Fatalf("got %d algorithms", len(algos))
	}
	want := map[string]bool{}
	for _, n := range AllAlgos() {
		want[string(n)] = true
	}
	for _, a := range algos {
		if !want[a.Name()] {
			t.Errorf("unexpected algorithm %q", a.Name())
		}
	}
}

func TestEvaluateKTooLarge(t *testing.T) {
	w := smallWorkload(t, 300)
	a, _ := BuildAlgo(PMLSH, w.Dataset.Points, BuildConfig{Seed: 1})
	if _, err := Evaluate(a, w, 100); err == nil {
		t.Error("k above truth depth should fail")
	}
}

// The harness-level reproduction check: on one workload, every
// algorithm produces sane metrics, and PM-LSH is at or near the top on
// recall (Table 4's qualitative content).
func TestOverviewShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := smallWorkload(t, 2000)
	rows, err := Overview(w, nil, 10, BuildConfig{Seed: 2, QALSHMaxHashes: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AllAlgos()) {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Algo] = r
		if r.TimeMS <= 0 {
			t.Errorf("%s: non-positive time", r.Algo)
		}
		if r.Ratio < 1-1e-9 {
			t.Errorf("%s: ratio %v below 1", r.Algo, r.Ratio)
		}
		if r.Recall < 0 || r.Recall > 1 {
			t.Errorf("%s: recall %v outside [0,1]", r.Algo, r.Recall)
		}
	}
	pm := byName[string(PMLSH)]
	if pm.Recall < 0.75 {
		t.Errorf("PM-LSH recall %v below 0.75", pm.Recall)
	}
	if pm.Recall < byName[string(LScan)].Recall-0.15 {
		t.Errorf("PM-LSH recall %v should not trail LScan (%v) badly",
			pm.Recall, byName[string(LScan)].Recall)
	}
}

func TestVaryKMonotoneSetup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := smallWorkload(t, 1000)
	rows, err := VaryK(w, []AlgoName{PMLSH, LScan}, []int{1, 10, 20}, BuildConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 algorithms x 3 k values
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.K != 1 && r.K != 10 && r.K != 20 {
			t.Errorf("unexpected k %d", r.K)
		}
	}
}

func TestTradeoffRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := smallWorkload(t, 800)
	rows, err := Tradeoff(w, 5, []float64{1.2, 1.8}, []int{8, 32}, []float64{0.3, 0.9},
		BuildConfig{Seed: 4, QALSHMaxHashes: 40})
	if err != nil {
		t.Fatal(err)
	}
	// PM-LSH, R-LSH, SRS, QALSH: 2 each; Multi-Probe: 2; LScan: 2.
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	// Larger c must not increase PM-LSH work dramatically; sanity: both
	// rows evaluated with the right knob recorded.
	seen := map[string][]float64{}
	for _, r := range rows {
		seen[r.Algo] = append(seen[r.Algo], r.C)
	}
	if len(seen[string(PMLSH)]) != 2 {
		t.Errorf("PM-LSH knob values: %v", seen[string(PMLSH)])
	}
}

func TestParamSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := smallWorkload(t, 800)
	pts, err := ParamSweep(w, 5, []int{0, 5}, []int{5, 15}, BuildConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Param != "s" || pts[2].Param != "m" {
		t.Errorf("sweep order wrong: %+v", pts)
	}
}

func TestCostModelAndStats(t *testing.T) {
	ds, _ := dataset.Generate(dataset.Spec{
		Name: "cm", N: 1000, D: 48, Clusters: 6, SubspaceDim: 5, RCTarget: 2.4, Seed: 6,
	})
	cmp, err := CostModel(ds, 10, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PMTreeCC <= 0 || cmp.RTreeCC <= 0 {
		t.Errorf("cost model: %+v", cmp)
	}
	st, err := DatasetStats(ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 1000 {
		t.Errorf("stats: %+v", st)
	}
}

func TestEstimatorStudyRuns(t *testing.T) {
	ds, _ := dataset.Generate(dataset.Spec{
		Name: "est", N: 600, D: 64, Clusters: 5, SubspaceDim: 6, RCTarget: 2.9, Seed: 9,
	})
	curves, err := EstimatorStudy(ds, 5, []int{100, 300}, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Errorf("got %d curves", len(curves))
	}
}

func TestPrinters(t *testing.T) {
	var buf bytes.Buffer
	rows := []Row{{Algo: "PM-LSH", K: 10, C: 1.5, TimeMS: 1.2, Ratio: 1.001, Recall: 0.95, Queries: 10}}
	PrintOverview(&buf, "Synth", rows)
	PrintVaryK(&buf, "Synth", rows)
	PrintTradeoff(&buf, "Synth", rows)
	PrintSweep(&buf, "Synth", []SweepPoint{{Param: "s", Value: 5, TimeMS: 1, Ratio: 1, Recall: 1}})
	out := buf.String()
	for _, want := range []string{"PM-LSH", "Overall Ratio", "metrics vs k", "tradeoff", "parameter sweep"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q", want)
		}
	}
}

func TestClosestPairStudy(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{
		Name: "cp", N: 500, D: 24, Clusters: 10, SubspaceDim: 5, RCTarget: 2.2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewCPWorkload(ds, 10, 18)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Points) != 510 || len(w.Planted) != 10 || w.DupRadius <= 0 {
		t.Fatalf("workload shape: n=%d planted=%d r=%v", len(w.Points), len(w.Planted), w.DupRadius)
	}
	rows, err := ClosestPairStudy(w, 10, 1.5, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (serial + parallel)", len(rows))
	}
	for _, r := range rows {
		// The planted duplicates make the closest pairs easy; the ratio
		// must stay within the c guarantee.
		if r.Ratio > 1.5+1e-9 || r.Ratio < 1-1e-9 {
			t.Errorf("%s: ratio %v outside [1, c]", r.Algo, r.Ratio)
		}
		if r.TimeMS < 0 {
			t.Errorf("%s: negative time", r.Algo)
		}
	}

	if _, err := NewCPWorkload(ds, 0, 1); err == nil {
		t.Error("zero duplicates should fail")
	}
}

func TestNaiveDedupBallCover(t *testing.T) {
	w := smallWorkload(t, 400)
	ix, err := core.BuildFromStore(w.Dataset.Store, core.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Probing every indexed point finds at least itself within any
	// positive radius, so every probe hits.
	hits, err := NaiveDedupBallCover(ix, w.Dataset.Points[:50], 0.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 50 {
		t.Errorf("self probes: %d hits of 50", hits)
	}
}
