package pmlsh

// One benchmark per table and figure of the paper's evaluation section,
// plus ablations (tree choice, confidence-interval width) and engine
// microbenchmarks (single-query KNN, batch-query throughput).
// Benchmarks run on scaled-down synthetic datasets so `go test
// -bench=.` finishes in minutes; cmd/reprobench regenerates the full
// tables (and accepts a -scale flag for paper-scale cardinalities).
// CHANGES.md records measured engine numbers per PR.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/estimator"
)

// benchEnv lazily builds the shared workload once per process.
type benchEnv struct {
	once sync.Once
	w    *bench.Workload
	err  error
}

var env benchEnv

func workload(b *testing.B) *bench.Workload {
	b.Helper()
	env.once.Do(func() {
		ds, err := dataset.Generate(dataset.Spec{
			Name: "bench", N: 4000, D: 64, Clusters: 12, SubspaceDim: 8, RCTarget: 2.2, Seed: 42,
		})
		if err != nil {
			env.err = err
			return
		}
		env.w, env.err = bench.NewWorkload(ds, 20, 100, 43)
	})
	if env.err != nil {
		b.Fatal(env.err)
	}
	return env.w
}

// BenchmarkTable4Overview measures per-query latency of every algorithm
// at the paper's defaults (k=50, c=1.5) — the content of Table 4.
func BenchmarkTable4Overview(b *testing.B) {
	w := workload(b)
	for _, name := range bench.AllAlgos() {
		b.Run(string(name), func(b *testing.B) {
			a, err := bench.BuildAlgo(name, w.Dataset.Points, bench.BuildConfig{Seed: 1, QALSHMaxHashes: 80})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.KNN(w.Queries[i%len(w.Queries)], 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2CostModel evaluates the PM-tree vs R-tree cost model
// on projected points — the content of Table 2.
func BenchmarkTable2CostModel(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := bench.CostModel(w.Dataset, 15, 0, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if cmp.PMTreeCC >= cmp.RTreeCC {
			b.Fatalf("Table 2 shape violated: PM %v >= R %v", cmp.PMTreeCC, cmp.RTreeCC)
		}
	}
}

// BenchmarkTable3DatasetStats computes HV/RC/LID — the content of
// Table 3.
func BenchmarkTable3DatasetStats(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.DatasetStats(w.Dataset, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Estimators ranks the dataset with the four distance
// estimators — the content of Fig. 3.
func BenchmarkFig3Estimators(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := bench.EstimatorStudy(w.Dataset, 3, []int{100, 500}, 50, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != len(estimator.Kinds()) {
			b.Fatal("missing curves")
		}
	}
}

// BenchmarkFig6ParamSweep builds PM-LSH at several s and m values and
// measures query behavior — the content of Fig. 6.
func BenchmarkFig6ParamSweep(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.ParamSweep(w, 10, []int{0, 5}, []int{10, 15}, bench.BuildConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7to9VaryK sweeps k for PM-LSH and SRS — the content of
// Figs. 7–9 (per-k latency of the two leading methods).
func BenchmarkFig7to9VaryK(b *testing.B) {
	w := workload(b)
	for _, k := range []int{1, 20, 50, 100} {
		for _, name := range []bench.AlgoName{bench.PMLSH, bench.SRS} {
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				a, err := bench.BuildAlgo(name, w.Dataset.Points, bench.BuildConfig{Seed: 2})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := a.KNN(w.Queries[i%len(w.Queries)], k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig10and11Tradeoff sweeps the quality knobs that generate
// the recall–time and ratio–time curves of Figs. 10–11.
func BenchmarkFig10and11Tradeoff(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := bench.Tradeoff(w, 10, []float64{1.2, 1.8}, []int{16}, []float64{0.5},
			bench.BuildConfig{Seed: int64(i), QALSHMaxHashes: 60})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTreeChoice isolates the PM-tree vs R-tree decision
// inside the identical Algorithm 2 (PM-LSH vs R-LSH).
func BenchmarkAblationTreeChoice(b *testing.B) {
	w := workload(b)
	for _, name := range []bench.AlgoName{bench.PMLSH, bench.RLSH} {
		b.Run(string(name), func(b *testing.B) {
			a, err := bench.BuildAlgo(name, w.Dataset.Points, bench.BuildConfig{Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.KNN(w.Queries[i%len(w.Queries)], 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAlpha sweeps the confidence-interval width α₁ — not
// a paper experiment, but the knob Lemma 4 exposes: smaller α₁ widens
// the projected radius (more candidates, higher recall).
func BenchmarkAblationAlpha(b *testing.B) {
	w := workload(b)
	for _, alpha := range []float64{0.05, 1 / 2.718281828, 0.8} {
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			ix, err := Build(w.Dataset.Points, Config{Seed: 4, Alpha1: alpha})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.KNN(w.Queries[i%len(w.Queries)], 20, 1.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexBuild measures construction cost of the PM-LSH index.
func BenchmarkIndexBuild(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(w.Dataset.Points, Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryK50 is the headline microbenchmark: one (1.5,50)-ANN
// query at the paper's defaults. Besides the ns/B/allocs triple it
// reports pdc/op, the mean projected-space distance computations per
// query (QueryStats.ProjectedDistComps) — the counter the resumable
// enumerator exists to shrink.
func BenchmarkQueryK50(b *testing.B) {
	w := workload(b)
	ix, err := Build(w.Dataset.Points, Config{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pdc int64
	for i := 0; i < b.N; i++ {
		_, st, err := ix.KNNWithStats(w.Queries[i%len(w.Queries)], 50, 1.5)
		if err != nil {
			b.Fatal(err)
		}
		pdc += st.ProjectedDistComps
	}
	b.ReportMetric(float64(pdc)/float64(b.N), "pdc/op")
}

// benchQueryK50Quant runs the headline query against an index built
// with the given screening codec, reporting scr/op (candidates the
// quantized screen rejected without an exact distance) next to pdc/op.
func benchQueryK50Quant(b *testing.B, w *bench.Workload, kind QuantKind) {
	ix, err := Build(w.Dataset.Points, Config{Seed: 5, Quantize: kind})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pdc, scr int64
	for i := 0; i < b.N; i++ {
		_, st, err := ix.KNNWithStats(w.Queries[i%len(w.Queries)], 50, 1.5)
		if err != nil {
			b.Fatal(err)
		}
		pdc += st.ProjectedDistComps
		scr += int64(st.Screened)
	}
	b.ReportMetric(float64(pdc)/float64(b.N), "pdc/op")
	b.ReportMetric(float64(scr)/float64(b.N), "scr/op")
}

// BenchmarkQueryK50QuantF32 is BenchmarkQueryK50 with the float32
// screening codec (half the verification bandwidth).
func BenchmarkQueryK50QuantF32(b *testing.B) { benchQueryK50Quant(b, workload(b), QuantF32) }

// BenchmarkQueryK50QuantI8 is BenchmarkQueryK50 with the int8 affine
// screening codec (an eighth of the verification bandwidth).
func BenchmarkQueryK50QuantI8(b *testing.B) { benchQueryK50Quant(b, workload(b), QuantI8) }

// hdEnv lazily builds the high-dimensional workload once per process:
// n≈2000 embedding-like rows at d=768, where exact verification is
// memory-bandwidth-bound and screening pays off most.
type hdEnv struct {
	once sync.Once
	w    *bench.Workload
	err  error
}

var hde hdEnv

func highDimWorkload(b *testing.B) *bench.Workload {
	b.Helper()
	hde.once.Do(func() {
		ds, err := dataset.Generate(dataset.Spec{
			Name: "benchhd", N: 2000, D: 768, Clusters: 24, SubspaceDim: 16, RCTarget: 2.5, Seed: 46,
		})
		if err != nil {
			hde.err = err
			return
		}
		hde.w, hde.err = bench.NewWorkload(ds, 20, 100, 47)
	})
	if hde.err != nil {
		b.Fatal(hde.err)
	}
	return hde.w
}

// BenchmarkQueryK50HighDim is the headline query on the d=768
// embedding-like workload: per-candidate verification cost is 12×
// BenchmarkQueryK50's, so this benchmark tracks the exact-kernel and
// screening work rather than tree traversal.
func BenchmarkQueryK50HighDim(b *testing.B) {
	w := highDimWorkload(b)
	ix, err := Build(w.Dataset.Points, Config{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pdc int64
	for i := 0; i < b.N; i++ {
		_, st, err := ix.KNNWithStats(w.Queries[i%len(w.Queries)], 50, 1.5)
		if err != nil {
			b.Fatal(err)
		}
		pdc += st.ProjectedDistComps
	}
	b.ReportMetric(float64(pdc)/float64(b.N), "pdc/op")
}

// BenchmarkQueryK50HighDimQuantF32 adds float32 screening at d=768.
func BenchmarkQueryK50HighDimQuantF32(b *testing.B) {
	benchQueryK50Quant(b, highDimWorkload(b), QuantF32)
}

// BenchmarkQueryK50HighDimQuantI8 adds int8 screening at d=768 — the
// configuration the codec exists for: candidates are rejected on 8×
// less memory traffic than the float64 rows.
func BenchmarkQueryK50HighDimQuantI8(b *testing.B) {
	benchQueryK50Quant(b, highDimWorkload(b), QuantI8)
}

// BenchmarkQueryK50Filtered is the headline query under WithFilter at
// 50% selectivity (admit even ids): the filtered-search scenario the
// request API exists for. The filter runs inside the verification
// loop, so rejected candidates cost no exact distance; ver/op reports
// the admitted verifications per query for comparison against the
// unfiltered BenchmarkQueryK50.
func BenchmarkQueryK50Filtered(b *testing.B) {
	w := workload(b)
	ix, err := Build(w.Dataset.Points, Config{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	admit := func(id int32) bool { return id%2 == 0 }
	var st QueryStats
	opts := []SearchOption{WithRatio(1.5), WithFilter(admit), WithStats(&st)}
	b.ReportAllocs()
	b.ResetTimer()
	var pdc, verified int64
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(ctx, w.Queries[i%len(w.Queries)], 50, opts...); err != nil {
			b.Fatal(err)
		}
		pdc += st.ProjectedDistComps
		verified += int64(st.Verified)
	}
	b.ReportMetric(float64(pdc)/float64(b.N), "pdc/op")
	b.ReportMetric(float64(verified)/float64(b.N), "ver/op")
}

// churnQEnv lazily prepares the mutation-lifecycle comparison: one
// index churned by deleting a random 40% (auto-compaction disabled so
// the tombstoned state is what gets measured), one churned identically
// and then compacted, and one built fresh over exactly the surviving
// live set. The acceptance bar is Compacted within 10% of FreshLive.
type churnQEnv struct {
	once      sync.Once
	churned   *Index
	compacted *Index
	fresh     *Index
	err       error
}

var cqe churnQEnv

func churnedIndexes(b *testing.B) (churned, compacted, fresh *Index) {
	b.Helper()
	w := workload(b)
	cqe.once.Do(func() {
		build := func() (*Index, map[int32]bool) {
			ix, err := Build(w.Dataset.Points, Config{Seed: 5, AutoCompactFraction: -1})
			if err != nil {
				cqe.err = err
				return nil, nil
			}
			rng := rand.New(rand.NewSource(131))
			dead := make(map[int32]bool)
			for _, id := range rng.Perm(len(w.Dataset.Points))[:4*len(w.Dataset.Points)/10] {
				if err := ix.Delete(int32(id)); err != nil {
					cqe.err = err
					return nil, nil
				}
				dead[int32(id)] = true
			}
			return ix, dead
		}
		var dead map[int32]bool
		cqe.churned, dead = build()
		if cqe.err != nil {
			return
		}
		cqe.compacted, _ = build()
		if cqe.err != nil {
			return
		}
		if cqe.err = cqe.compacted.Compact(); cqe.err != nil {
			return
		}
		survivors := make([][]float64, 0, cqe.churned.LiveLen())
		for i, p := range w.Dataset.Points {
			if !dead[int32(i)] {
				survivors = append(survivors, p)
			}
		}
		cqe.fresh, cqe.err = Build(survivors, Config{Seed: 5})
	})
	if cqe.err != nil {
		b.Fatal(cqe.err)
	}
	return cqe.churned, cqe.compacted, cqe.fresh
}

func benchQueryK50On(b *testing.B, ix *Index) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	var pdc int64
	for i := 0; i < b.N; i++ {
		_, st, err := ix.KNNWithStats(w.Queries[i%len(w.Queries)], 50, 1.5)
		if err != nil {
			b.Fatal(err)
		}
		pdc += st.ProjectedDistComps
	}
	b.ReportMetric(float64(pdc)/float64(b.N), "pdc/op")
}

// BenchmarkQueryK50Churned measures the query after deleting 40% of
// the dataset with compaction held off: tombstoned slots are out of
// the tree but the covering radii stay loose, so this is the worst
// sustained state the serving engine can be in.
func BenchmarkQueryK50Churned(b *testing.B) {
	churned, _, _ := churnedIndexes(b)
	benchQueryK50On(b, churned)
}

// BenchmarkQueryK50Compacted is the same churned index after
// Compact(): the acceptance criterion requires it within 10% of
// BenchmarkQueryK50FreshLive.
func BenchmarkQueryK50Compacted(b *testing.B) {
	_, compacted, _ := churnedIndexes(b)
	benchQueryK50On(b, compacted)
}

// BenchmarkQueryK50FreshLive is the reference: a fresh Build over
// exactly the live set the churned/compacted indexes serve.
func BenchmarkQueryK50FreshLive(b *testing.B) {
	_, _, fresh := churnedIndexes(b)
	benchQueryK50On(b, fresh)
}

// BenchmarkDelete measures one Delete (tree entry removal + tombstone)
// on a fresh index, auto-compaction disabled; b.N deletes then rebuild.
func BenchmarkDelete(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	var ix *Index
	var err error
	n := len(w.Dataset.Points)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%n == 0 {
			b.StopTimer()
			ix, err = Build(w.Dataset.Points, Config{Seed: 5, AutoCompactFraction: -1})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := ix.Delete(int32(i % n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompact measures a full Compact of the 40%-churned index.
func BenchmarkCompact(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix, err := Build(w.Dataset.Points, Config{Seed: 5, AutoCompactFraction: -1})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(131))
		for _, id := range rng.Perm(len(w.Dataset.Points))[:4*len(w.Dataset.Points)/10] {
			if err := ix.Delete(int32(id)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := ix.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNSerial answers the whole query set one query at a time —
// the serial baseline BenchmarkKNNBatch is compared against. One
// iteration = len(w.Queries) queries for both, so ns/op is directly
// comparable and aggregate QPS is queries/(ns/op).
func BenchmarkKNNSerial(b *testing.B) {
	w := workload(b)
	ix, err := Build(w.Dataset.Points, Config{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pdc int64
	for i := 0; i < b.N; i++ {
		for _, q := range w.Queries {
			_, st, err := ix.KNNWithStats(q, 50, 1.5)
			if err != nil {
				b.Fatal(err)
			}
			pdc += st.ProjectedDistComps
		}
	}
	b.ReportMetric(float64(pdc)/float64(b.N), "pdc/op")
}

// cpEnv lazily builds the closest-pair reference workload once per
// process: a dedup-shaped corpus (many small clusters, as a document
// collection with templated content) with planted near-copies, plus an
// index over the union. The same workload drives the CP engine
// benchmarks and the naive per-point BallCover dedup loop they replace.
type cpEnv struct {
	once sync.Once
	w    *bench.CPWorkload
	ix   *core.Index
	err  error
}

var cpe cpEnv

const (
	cpBenchK = 60  // pairs asked of the CP engine (= planted duplicates)
	cpBenchC = 2.0 // dedup's approximation ratio (matches examples/dedup)
)

func cpWorkload(b *testing.B) (*bench.CPWorkload, *core.Index) {
	b.Helper()
	cpe.once.Do(func() {
		// Dedup-shaped corpus: many tight template clusters (near-copies
		// of a document concentrate sharply around it), higher original
		// dimensionality, plus planted near-duplicates.
		ds, err := dataset.Generate(dataset.Spec{
			Name: "cpbench", N: 2400, D: 784, Clusters: 160, SubspaceDim: 5, RCTarget: 6.0, Seed: 52,
		})
		if err != nil {
			cpe.err = err
			return
		}
		cpe.w, cpe.err = bench.NewCPWorkload(ds, cpBenchK, 53)
		if cpe.err != nil {
			return
		}
		cpe.ix, cpe.err = core.Build(cpe.w.Points, core.Config{Seed: 54})
	})
	if cpe.err != nil {
		b.Fatal(cpe.err)
	}
	return cpe.w, cpe.ix
}

// BenchmarkClosestPairs measures one (c,k)-closest-pair query over the
// reference dedup workload: the dual-branch self-join traversal with
// confidence-interval termination.
func BenchmarkClosestPairs(b *testing.B) {
	_, ix := cpWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.ClosestPairs(cpBenchK, cpBenchC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosestPairsParallel is the same query with pair
// verification fanned across the worker pool.
func BenchmarkClosestPairsParallel(b *testing.B) {
	_, ix := cpWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.ClosestPairsParallel(cpBenchK, cpBenchC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveDedupBallCover is the pre-subsystem baseline on the
// same workload: one BallCover probe per corpus point (n independent
// probes, each re-projecting the point and re-traversing the tree).
// One iteration covers the whole corpus, so ns/op compares directly
// with one ClosestPairs call above.
func BenchmarkNaiveDedupBallCover(b *testing.B) {
	w, ix := cpWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.NaiveDedupBallCover(ix, w.Points, w.DupRadius, cpBenchC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNBatch fans the same query set across the SearchBatch
// worker pool (GOMAXPROCS workers): the first-class concurrent read
// path. The pdc/op metric (projected distance computations per batch)
// is collected in the timed loop itself through WithBatchStats — the
// per-query counters are exact under concurrency, so no serial
// pre-measurement pass is needed.
func BenchmarkKNNBatch(b *testing.B) {
	w := workload(b)
	ix, err := Build(w.Dataset.Points, Config{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	stats := make([]QueryStats, len(w.Queries))
	opts := []SearchOption{WithRatio(1.5), WithBatchStats(stats)}
	b.ReportAllocs()
	b.ResetTimer()
	var pdc int64
	for i := 0; i < b.N; i++ {
		if _, err := ix.SearchBatch(ctx, w.Queries, 50, opts...); err != nil {
			b.Fatal(err)
		}
		for j := range stats {
			pdc += stats[j].ProjectedDistComps
		}
	}
	b.ReportMetric(float64(pdc)/float64(b.N), "pdc/op")
}

// benchQueryK50Metric runs the headline query against a reduced-metric
// build of the same workload: the reduction (normalize for cosine,
// dimension augmentation for inner product) happens at build and query
// time, so any slowdown relative to BenchmarkQueryK50 is the price of
// the metric itself.
func benchQueryK50Metric(b *testing.B, m Metric) {
	w := workload(b)
	ix, err := Build(w.Dataset.Points, Config{Seed: 5, Metric: m})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pdc int64
	for i := 0; i < b.N; i++ {
		_, st, err := ix.KNNWithStats(w.Queries[i%len(w.Queries)], 50, 1.5)
		if err != nil {
			b.Fatal(err)
		}
		pdc += st.ProjectedDistComps
	}
	b.ReportMetric(float64(pdc)/float64(b.N), "pdc/op")
}

// BenchmarkQueryK50Cosine is BenchmarkQueryK50 under the cosine
// reduction (normalize-on-ingest, L2 internally).
func BenchmarkQueryK50Cosine(b *testing.B) { benchQueryK50Metric(b, MetricCosine) }

// BenchmarkQueryK50MIP is BenchmarkQueryK50 under the inner-product
// reduction (augmented dimension, wider DefaultMIPAlpha1 schedule).
func BenchmarkQueryK50MIP(b *testing.B) { benchQueryK50Metric(b, MetricInnerProduct) }

// jacEnv lazily builds the shared Jaccard corpus once per process:
// 200 clusters of a base set plus 4 near-duplicate variants, 40
// tokens each — 1000 sets behind the MinHash band-LSH backend.
type jacEnv struct {
	once sync.Once
	sets [][]uint64
	ix   *Index
	err  error
}

var jenv jacEnv

func jaccardBenchIndex(b *testing.B) (*Index, [][]uint64) {
	b.Helper()
	jenv.once.Do(func() {
		jenv.sets = jaccardCorpus(200, 5, 40, 77)
		jenv.ix, jenv.err = BuildSets(jenv.sets, Config{Metric: MetricJaccard, Seed: 77})
	})
	if jenv.err != nil {
		b.Fatal(jenv.err)
	}
	return jenv.ix, jenv.sets
}

// BenchmarkJaccardSearch measures one top-10 set query against the
// MinHash backend: band-bucket probing plus exact-Jaccard rescore.
func BenchmarkJaccardSearch(b *testing.B) {
	ix, sets := jaccardBenchIndex(b)
	ctx := context.Background()
	queries := make([][]float64, 64)
	for i := range queries {
		queries[i] = make([]float64, 0, len(sets[i*5]))
		for _, tok := range sets[i*5] {
			queries[i] = append(queries[i], float64(tok))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ix.Search(ctx, queries[i%len(queries)], 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkTextDedupPairs measures the whole-corpus duplicate sweep:
// one SearchPairs call over the 1000-set corpus, the operation behind
// examples/textdedup.
func BenchmarkTextDedupPairs(b *testing.B) {
	ix, _ := jaccardBenchIndex(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs, err := ix.SearchPairs(ctx, 100)
		if err != nil {
			b.Fatal(err)
		}
		if len(pairs) == 0 {
			b.Fatal("no pairs")
		}
	}
}
