package pmlsh

import (
	"context"

	"repro/internal/core"
)

// This file is the unified per-query request API. One options-driven
// entry point per query family — Search (point ANN), SearchBatch
// (many point queries under one lock), SearchPairs (closest pairs),
// SearchBall (ball cover) — replaces the fixed-signature method pairs:
// every per-query knob the paper parameterizes per query (the ratio c,
// the confidence-interval width α1 behind Eq. 10's T and β), plus
// result filtering, verification budgets and statistics sinks, travels
// as a functional option. The legacy methods (KNN, KNNWithStats,
// KNNBatch, BallCover, ClosestPairs, ClosestPairsWithStats,
// ClosestPairsParallel) survive as thin shims over these entry points
// and answer element-wise identically.

// SearchOption configures one query request. Options are evaluated in
// order; a later option overrides an earlier one for the same knob.
type SearchOption func(*core.SearchOptions)

// WithRatio sets the per-query approximation ratio c. The i-th result
// is, with constant probability, within c² of the exact i-th neighbor
// distance (within c for SearchPairs). Values <= 0 select the default
// 1.5; values in (0, 1] are rejected. Smaller ratios search wider:
// higher recall, more work.
func WithRatio(c float64) SearchOption {
	return func(o *core.SearchOptions) { o.C = c }
}

// WithAlpha1 sets the per-query confidence-interval parameter α₁ of
// the paper's Eq. 10, overriding Config.Alpha1 for this query only. It
// must lie in (0,1); smaller values widen the projected search radius:
// higher recall, more work. The candidate-fraction β is calibrated to
// depend only on the ratio c, so α₁ tunes the radius multiplier T
// alone.
func WithAlpha1(alpha1 float64) SearchOption {
	return func(o *core.SearchOptions) { o.Alpha1 = alpha1 }
}

// WithFilter restricts results to ids the predicate admits — the
// filtered-search scenario where only a subset of the corpus is
// eligible (per-user visibility, category constraints, tombstoned
// upstream state). The filter is pushed into the verification loop: a
// filtered-out candidate costs one predicate call but no exact
// distance computation, and the candidate budget βn+k counts only
// admitted points, so the engine keeps expanding until it has k
// admitted results (or the corpus is exhausted) instead of returning
// short. For SearchPairs a pair is admitted only when both ids are.
//
// The predicate must be fast, side-effect free and safe for concurrent
// use — SearchBatch and SearchPairs with WithParallelVerify call it
// from multiple goroutines. It only ever sees live ids.
func WithFilter(admit func(id int32) bool) SearchOption {
	return func(o *core.SearchOptions) { o.Filter = admit }
}

// WithBudget overrides the query's derived verification budget: the
// number of admitted candidates whose exact distance is computed
// before the query stops (βn+k by default; for SearchBall it replaces
// the βn overflow threshold). Values <= 0 keep the derived budget.
// Lowering it trades recall for a hard latency cap; the paper's (c,k)
// guarantee assumes the derived value.
func WithBudget(candidates int) SearchOption {
	return func(o *core.SearchOptions) { o.Budget = candidates }
}

// WithStats directs Search or SearchBall to fill *st with the query's
// work statistics. Every field is exact for the query it describes —
// ProjectedDistComps included — no matter how many queries run
// concurrently. Ignored by SearchBatch (use WithBatchStats) and
// SearchPairs (use WithPairStats).
func WithStats(st *QueryStats) SearchOption {
	return func(o *core.SearchOptions) { o.Stats = st }
}

// WithBatchStats directs SearchBatch to fill st[i] with the statistics
// of query i. st must have at least as many entries as the query
// slice. Each entry is exact for its query even though the batch runs
// them concurrently.
func WithBatchStats(st []QueryStats) SearchOption {
	return func(o *core.SearchOptions) { o.BatchStats = st }
}

// WithPairStats directs SearchPairs to fill *st with the query's work
// statistics (exact per query, including under WithParallelVerify).
func WithPairStats(st *CPStats) SearchOption {
	return func(o *core.SearchOptions) { o.PairStats = st }
}

// WithParallelVerify fans SearchPairs candidate verification across a
// worker pool of up to GOMAXPROCS goroutines. Termination is checked
// per verification batch instead of per pair, so slightly more
// candidates may be examined; the result carries the same (c,k)
// guarantee and is, rank by rank, at least as close. Ignored by the
// other entry points (point-query parallelism comes from SearchBatch).
func WithParallelVerify() SearchOption {
	return func(o *core.SearchOptions) { o.Parallel = true }
}

// searchOptions folds a SearchOption list into the core options value.
func searchOptions(opts []SearchOption) core.SearchOptions {
	var o core.SearchOptions
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Search answers one (c,k)-ANN request: up to k admitted points whose
// i-th member is, with constant probability, within c²·||q,o*_i|| of
// the query (o*_i the exact i-th admitted nearest neighbor). Results
// are sorted by distance. The zero-option call is KNN at the default
// ratio:
//
//	res, err := index.Search(ctx, q, 10)                    // c = 1.5
//	res, err = index.Search(ctx, q, 10, WithRatio(2),
//	    WithFilter(func(id int32) bool { return visible[id] }),
//	    WithStats(&st))
//
// Cancellation is checked between the query's range-expansion rounds:
// a canceled context makes Search stop doing tree work and return
// ctx.Err(), and the index stays fully usable.
func (x *Index) Search(ctx context.Context, q []float64, k int, opts ...SearchOption) ([]Neighbor, error) {
	res, err := x.ix.Search(ctx, q, k, searchOptions(opts))
	return convert(res), err
}

// SearchBatch answers many (c,k)-ANN requests under one options value,
// fanning them across a worker pool of up to GOMAXPROCS goroutines.
// out[i] holds the neighbors of qs[i], identical to Search per query —
// only the scheduling differs. The batch pins one snapshot of every
// shard up front, so all its queries observe the same index state, and
// mutations neither wait for the batch nor make it wait. Cancellation
// is checked between work items and between each query's expansion
// rounds; a canceled batch returns ctx.Err(). Otherwise the first
// query error, if any, is returned after all workers finish — and on
// any non-nil error the result slice is nil, never a partially filled
// batch.
func (x *Index) SearchBatch(ctx context.Context, qs [][]float64, k int, opts ...SearchOption) ([][]Neighbor, error) {
	res, err := x.ix.SearchBatch(ctx, qs, k, searchOptions(opts))
	if res == nil {
		return nil, err
	}
	out := make([][]Neighbor, len(res))
	for i, r := range res {
		out[i] = convert(r)
	}
	return out, err
}

// SearchPairs answers one (c,k)-closest-pair request: up to k admitted
// pairs of distinct indexed points such that, with constant
// probability, the i-th returned distance is within factor c of the
// exact i-th closest admitted pair distance. Results are sorted by
// distance; each unordered pair appears at most once; a filter admits
// a pair only when it admits both ids. k is clamped to the number of
// distinct pairs, and an index with fewer than two points returns no
// pairs. Cancellation is checked between rounds and between
// verification work items.
//
// The query runs a dual-branch self-join over the PM-tree in projected
// space, so it requires the default PM-tree index; an index built with
// UseRTree returns an error.
func (x *Index) SearchPairs(ctx context.Context, k int, opts ...SearchOption) ([]Pair, error) {
	res, err := x.ix.SearchPairs(ctx, k, searchOptions(opts))
	return convertPairs(res), err
}

// SearchBall answers one (r,c)-ball-cover request (Definition 3): if
// some admitted point lies within r of q it returns, with constant
// probability, an admitted point within c·r; if no admitted point lies
// within c·r it returns nil. WithStats fills per-query statistics
// (Rounds is always 1 — ball cover is a single streamed range
// expansion).
func (x *Index) SearchBall(ctx context.Context, q []float64, r float64, opts ...SearchOption) (*Neighbor, error) {
	res, err := x.ix.SearchBall(ctx, q, r, searchOptions(opts))
	if err != nil || res == nil {
		return nil, err
	}
	return &Neighbor{ID: res.ID, Dist: res.Dist}, nil
}
