package pmlsh

// Tests for the public request API: the legacy shims must answer
// element-wise identically to Search* with matching options across
// backends and churned indexes, filtered search must agree with a
// filtered brute-force oracle, cancellation must return ctx.Err()
// promptly and leave the index usable, nil results must stay nil
// through the public conversion layer, and a mutation hammer must hold
// under -race.

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

// randomChurnedIndex builds a public index under a random config (both
// backends), optionally churned through Delete/Insert. Returns the
// index and a live-id -> vector oracle.
func randomChurnedIndex(t *testing.T, rng *rand.Rand) (*Index, map[int32][]float64) {
	t.Helper()
	n := 200 + rng.Intn(300)
	dim := 6 + rng.Intn(20)
	data := make([][]float64, n)
	for i := range data {
		data[i] = make([]float64, dim)
		for j := range data[i] {
			data[i][j] = rng.NormFloat64() * 6
		}
	}
	cfg := Config{
		M:                   []int{8, 15}[rng.Intn(2)],
		Seed:                rng.Int63(),
		UseRTree:            rng.Intn(3) == 0,
		AutoCompactFraction: -1,
	}
	ix, err := Build(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[int32][]float64, n)
	for i, p := range data {
		live[int32(i)] = p
	}
	if rng.Intn(2) == 0 { // churn half the time
		for i := 0; i < 30; i++ {
			id := int32(rng.Intn(n))
			if err := ix.Delete(id); err == nil {
				delete(live, id)
			}
		}
		for i := 0; i < 20; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.NormFloat64() * 6
			}
			id, err := ix.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			live[id] = p
		}
	}
	return ix, live
}

// TestPublicShimsMatchSearch is the public randomized equivalence
// suite: legacy methods vs Search* with matching options, both
// backends, churned indexes, statistics included.
func TestPublicShimsMatchSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(771))
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		ix, live := randomChurnedIndex(t, rng)
		livePts := make([][]float64, 0, len(live))
		for _, p := range live {
			livePts = append(livePts, p)
		}
		for qi := 0; qi < 5; qi++ {
			q := livePts[rng.Intn(len(livePts))]
			k := []int{1, 5, 15}[qi%3]
			c := []float64{1.3, 1.5, 2.0}[qi%3]

			want, wantSt, err := ix.KNNWithStats(q, k, c)
			if err != nil {
				t.Fatal(err)
			}
			var gotSt QueryStats
			got, err := ix.Search(ctx, q, k, WithRatio(c), WithStats(&gotSt))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: Search %d results, KNN %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: result %d = %+v, want %+v", trial, i, got[i], want[i])
				}
			}
			if gotSt != wantSt {
				t.Fatalf("trial %d: stats %+v, want %+v", trial, gotSt, wantSt)
			}

			r := 0.2 + rng.Float64()*5
			wantBC, err := ix.BallCover(q, r, c)
			if err != nil {
				t.Fatal(err)
			}
			gotBC, err := ix.SearchBall(ctx, q, r, WithRatio(c))
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case (gotBC == nil) != (wantBC == nil):
				t.Fatalf("trial %d: SearchBall %v, BallCover %v", trial, gotBC, wantBC)
			case gotBC != nil && *gotBC != *wantBC:
				t.Fatalf("trial %d: SearchBall %+v, BallCover %+v", trial, *gotBC, *wantBC)
			}
		}

		qs := [][]float64{
			livePts[rng.Intn(len(livePts))],
			livePts[rng.Intn(len(livePts))],
			livePts[rng.Intn(len(livePts))],
		}
		want, err := ix.KNNBatch(qs, 5, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.SearchBatch(ctx, qs, 5, WithRatio(1.5))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("trial %d: batch result (%d,%d) differs", trial, i, j)
				}
			}
		}

		// Pair queries on the PM-tree backend only.
		if _, err := ix.SearchPairs(ctx, 1); err != nil {
			continue // R-tree ablation
		}
		wantP, wantPSt, err := ix.ClosestPairsWithStats(5, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		var gotPSt CPStats
		gotP, err := ix.SearchPairs(ctx, 5, WithRatio(1.5), WithPairStats(&gotPSt))
		if err != nil {
			t.Fatal(err)
		}
		if len(gotP) != len(wantP) || gotPSt != wantPSt {
			t.Fatalf("trial %d: pairs %d/%d, stats %+v vs %+v",
				trial, len(gotP), len(wantP), gotPSt, wantPSt)
		}
		for i := range gotP {
			if gotP[i] != wantP[i] {
				t.Fatalf("trial %d: pair %d = %+v, want %+v", trial, i, gotP[i], wantP[i])
			}
		}
		wantPar, err := ix.ClosestPairsParallel(5, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		gotPar, err := ix.SearchPairs(ctx, 5, WithRatio(1.5), WithParallelVerify())
		if err != nil {
			t.Fatal(err)
		}
		if len(gotPar) != len(wantPar) {
			t.Fatalf("trial %d: parallel pairs %d vs %d", trial, len(gotPar), len(wantPar))
		}
		for i := range gotPar {
			if gotPar[i] != wantPar[i] {
				t.Fatalf("trial %d: parallel pair %d differs", trial, i)
			}
		}
	}
}

// TestPublicFilteredSearch checks WithFilter at ~50% selectivity
// against a filtered brute-force oracle over the live set, and that
// the filtered engine does fewer exact verifications than the
// unfiltered query a caller would post-filter.
func TestPublicFilteredSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(772))
	admit := func(id int32) bool { return id%2 == 0 }
	var recallSum float64
	var queries, filteredVerified, unfilteredVerified int
	for trial := 0; trial < 8; trial++ {
		ix, live := randomChurnedIndex(t, rng)
		for qi := 0; qi < 4; qi++ {
			var q []float64
			for _, p := range live {
				q = p
				break
			}
			k := 5 + rng.Intn(8)
			var fst, ust QueryStats
			got, err := ix.Search(context.Background(), q, k,
				WithFilter(admit), WithStats(&fst))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ix.Search(context.Background(), q, k, WithStats(&ust)); err != nil {
				t.Fatal(err)
			}
			// Filtered brute force over the live admitted set.
			type cand struct {
				id int32
				d  float64
			}
			var exact []cand
			for id, p := range live {
				if !admit(id) {
					continue
				}
				exact = append(exact, cand{id: id, d: vec.L2(q, p)})
			}
			sort.Slice(exact, func(i, j int) bool {
				if exact[i].d != exact[j].d {
					return exact[i].d < exact[j].d
				}
				return exact[i].id < exact[j].id
			})
			if len(exact) > k {
				exact = exact[:k]
			}
			if len(exact) == 0 {
				continue
			}
			exactIDs := make(map[int32]bool, len(exact))
			for _, e := range exact {
				exactIDs[e.id] = true
			}
			hits := 0
			for _, nb := range got {
				if !admit(nb.ID) {
					t.Fatalf("trial %d: filtered-out id %d returned", trial, nb.ID)
				}
				if exactIDs[nb.ID] {
					hits++
				}
			}
			recallSum += float64(hits) / float64(len(exact))
			queries++
			filteredVerified += fst.Verified
			unfilteredVerified += ust.Verified
		}
	}
	if queries == 0 {
		t.Fatal("no filtered queries ran")
	}
	if recall := recallSum / float64(queries); recall < 0.8 {
		t.Fatalf("filtered recall %.3f < 0.8", recall)
	}
	if filteredVerified >= unfilteredVerified {
		t.Fatalf("filtered search verified %d >= unfiltered %d (filter not pushed into the loop?)",
			filteredVerified, unfilteredVerified)
	}
}

// TestPublicCancellation: canceled and expired contexts return
// ctx.Err() from every public entry point, and the index stays usable.
func TestPublicCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(773))
	ix, live := randomChurnedIndex(t, rng)
	var q []float64
	for _, p := range live {
		q = p
		break
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.Search(canceled, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search: %v", err)
	}
	if _, err := ix.SearchBatch(canceled, [][]float64{q, q}, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchBatch: %v", err)
	}
	if _, err := ix.SearchBall(canceled, q, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchBall: %v", err)
	}
	if _, err := ix.SearchPairs(canceled, 5); err == nil {
		t.Fatal("SearchPairs under canceled ctx succeeded")
	} else if !errors.Is(err, context.Canceled) {
		// The R-tree ablation rejects pair queries before looking at ctx.
		t.Logf("SearchPairs: %v (non-PM-tree backend)", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := ix.Search(expired, q, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Search under expired deadline: %v", err)
	}
	// Still healthy.
	if _, err := ix.Search(context.Background(), q, 5); err != nil {
		t.Fatalf("Search after cancellations: %v", err)
	}
}

// TestConvertNilInNilOut is the regression test for the conversion
// layer: queries whose core answer is nil must surface nil, not an
// allocated empty slice.
func TestConvertNilInNilOut(t *testing.T) {
	if got := convert(nil); got != nil {
		t.Fatalf("convert(nil) = %#v, want nil", got)
	}
	if got := convertPairs(nil); got != nil {
		t.Fatalf("convertPairs(nil) = %#v, want nil", got)
	}
	if got := convert([]core.Result{}); got == nil || len(got) != 0 {
		t.Fatalf("convert(empty) = %#v, want empty non-nil", got)
	}
	if got := convertPairs([]core.Pair{}); got == nil || len(got) != 0 {
		t.Fatalf("convertPairs(empty) = %#v, want empty non-nil", got)
	}

	// End to end: an index whose live set is empty answers nil.
	ix, err := Build([][]float64{{1, 2}, {3, 4}}, Config{AutoCompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(1); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(context.Background(), []float64{0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("empty-index Search = %#v, want nil", res)
	}
	pairs, err := ix.SearchPairs(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if pairs != nil {
		t.Fatalf("empty-index SearchPairs = %#v, want nil", pairs)
	}
}

// TestSearchMutationRaceHammer mixes Search/SearchBatch (with filters
// and stats sinks) with Insert/Delete/Compact from concurrent
// goroutines — the -race exercise for the request API's pooled state.
func TestSearchMutationRaceHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(774))
	dim := 8
	n := 400
	data := make([][]float64, n)
	for i := range data {
		data[i] = make([]float64, dim)
		for j := range data[i] {
			data[i][j] = rng.NormFloat64() * 4
		}
	}
	ix, err := Build(data, Config{Seed: 21, AutoCompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	admit := func(id int32) bool { return id%2 == 0 }
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	// Mutator: deletes random ids, inserts perturbed points, compacts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		mrng := rand.New(rand.NewSource(31))
		for op := 0; !stop.Load(); op++ {
			switch op % 8 {
			case 7:
				if err := ix.Compact(); err != nil {
					errCh <- err
					return
				}
			case 0, 1, 2:
				id := int32(mrng.Intn(ix.Len()))
				_ = ix.Delete(id) // already-deleted errors are expected
			default:
				p := make([]float64, dim)
				for j := range p {
					p[j] = mrng.NormFloat64() * 4
				}
				if _, err := ix.Insert(p); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(100 + g)))
			ctx := context.Background()
			for i := 0; !stop.Load(); i++ {
				q := data[qrng.Intn(n)]
				switch i % 3 {
				case 0:
					var st QueryStats
					res, err := ix.Search(ctx, q, 5, WithFilter(admit), WithStats(&st))
					if err != nil {
						errCh <- err
						return
					}
					for _, nb := range res {
						if !admit(nb.ID) {
							errCh <- errors.New("filtered-out id returned under churn")
							return
						}
					}
				case 1:
					qs := [][]float64{q, data[qrng.Intn(n)]}
					stats := make([]QueryStats, len(qs))
					if _, err := ix.SearchBatch(ctx, qs, 5, WithBatchStats(stats)); err != nil {
						errCh <- err
						return
					}
				default:
					if _, err := ix.SearchPairs(ctx, 3); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}
