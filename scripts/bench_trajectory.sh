#!/usr/bin/env bash
# bench_trajectory.sh — run the headline engine benchmarks and write
# BENCH_<pr>.json so the perf trajectory accumulates machine-readable
# data points (ns/op, B/op, allocs/op, pdc/op for the serial, batch,
# churned and filtered QueryK50 paths, plus scr/op screen-reject counts
# for the quantized variants and the d=768 high-dim workload, plus
# p50-ns/p99-ns read-tail-latency-under-mutator for the RWMutex
# baseline vs the snapshot-isolated sharded engine, plus the
# end-to-end HTTP serving latency of BenchmarkServerSearch and its
# WAL-backed variants: search overhead with durability attached and
# the insert path under fsync-always vs group commit, plus the
# multi-metric paths: QueryK50 under the cosine and inner-product
# reductions, a top-10 Jaccard set query against the MinHash backend,
# and the whole-corpus SearchPairs duplicate sweep).
#
# Usage: scripts/bench_trajectory.sh [output.json]
#   PR        tag for the stacked-PR sequence number   (default: 10)
#   BENCHTIME go test -benchtime value                 (default: 1s)
set -euo pipefail
cd "$(dirname "$0")/.."

pr="${PR:-10}"
out="${1:-BENCH_${pr}.json}"
benchtime="${BENCHTIME:-1s}"

raw="$(go test -run '^$' \
  -bench '^(BenchmarkQueryK50|BenchmarkKNNSerial|BenchmarkKNNBatch|BenchmarkQueryK50Churned|BenchmarkQueryK50Filtered|BenchmarkQueryK50QuantF32|BenchmarkQueryK50QuantI8|BenchmarkQueryK50HighDim|BenchmarkQueryK50HighDimQuantF32|BenchmarkQueryK50HighDimQuantI8|BenchmarkMixedReadP99|BenchmarkServerSearch|BenchmarkServerSearchDurable|BenchmarkServerInsertDurable|BenchmarkQueryK50Cosine|BenchmarkQueryK50MIP|BenchmarkJaccardSearch|BenchmarkTextDedupPairs)$' \
  -benchtime "$benchtime" .)"
echo "$raw"
echo "$raw" | go run ./cmd/benchjson -pr "$pr" > "$out"
echo "wrote $out"
