#!/usr/bin/env bash
# metric_smoke.sh — end-to-end smoke of the multi-metric engine:
#
#   - examples/textdedup: shingled documents → Jaccard SearchPairs,
#     asserts ≥ 95% of planted near-duplicate pairs are recovered,
#   - `pmlsh build -metric cosine` → PLS6 index file, `pmlsh info`
#     reports the metric, serve it and check /v1/info + the
#     pmlsh_index_metric gauge on /metrics,
#   - pmlshload against the cosine server: the recall oracle
#     auto-detects the server metric and scores against native cosine
#     brute force,
#   - `pmlsh build -metric ip` round-trips through info as a
#     serialization sanity check for the MIP envelope.
#
# Usage: scripts/metric_smoke.sh [workdir]
#   RATE     pmlshload arrival rate  (default: 60/s)
#   DURATION pmlshload run length    (default: 4s)
set -euo pipefail
cd "$(dirname "$0")/.."

work="${1:-$(mktemp -d)}"
rate="${RATE:-60}"
duration="${DURATION:-4s}"
addr="127.0.0.1:18933"
base="http://$addr"

cleanup() {
  [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
}
trap cleanup EXIT

echo "== jaccard: text near-duplicate detection (examples/textdedup)"
go run ./examples/textdedup

go build -o "$work/pmlsh" ./cmd/pmlsh
go build -o "$work/pmlshload" ./cmd/pmlshload
go run ./cmd/datagen -dataset Audio -maxn 2000 -out "$work/data.f64" >/dev/null

echo "== cosine: build persists the metric"
"$work/pmlsh" build -data "$work/data.f64" -index "$work/cosine.pmlsh" \
  -metric cosine -shards 4
"$work/pmlsh" info -index "$work/cosine.pmlsh" | tee "$work/info.txt"
grep -q "metric:     cosine" "$work/info.txt"

echo "== cosine: serve the loaded index"
"$work/pmlsh" serve -load "$work/cosine.pmlsh" -addr "$addr" 2>"$work/serve.log" &
server_pid=$!
for _ in $(seq 1 100); do
  curl -sf "$base/readyz" >/dev/null 2>&1 && break
  kill -0 "$server_pid" 2>/dev/null || { echo "server died:"; cat "$work/serve.log"; exit 1; }
  sleep 0.2
done

curl -sf "$base/v1/info" | grep -q '"metric":"cosine"'
curl -sf "$base/metrics" | grep 'pmlsh_index_metric'
curl -sf "$base/metrics" | grep -q 'pmlsh_index_metric{metric="cosine"} 1'

echo "== cosine: metric-matched recall oracle ($rate/s for $duration)"
"$work/pmlshload" -url "$base" -data "$work/data.f64" \
  -rate "$rate" -duration "$duration" -read 0.85 | tee "$work/load.txt"
grep -q "server metric: cosine" "$work/load.txt"

kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""

echo "== inner product: PLS6 envelope round-trips through build/info"
"$work/pmlsh" build -data "$work/data.f64" -index "$work/mip.pmlsh" -metric ip
"$work/pmlsh" info -index "$work/mip.pmlsh" | grep -q "metric:     ip"

echo "metric smoke OK ($work)"
