#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the network serving layer:
# generate a dataset dump, start `pmlsh serve`, wait for readiness,
# exercise every serving concern (search, mutation, compaction, info,
# metrics), run a short burst of pmlshload traffic with the recall
# oracle, then SIGTERM the server and verify it drains cleanly and
# writes a loadable final checkpoint.
#
# Usage: scripts/serve_smoke.sh [workdir]
#   RATE     pmlshload arrival rate        (default: 80/s)
#   DURATION pmlshload run length          (default: 5s)
set -euo pipefail
cd "$(dirname "$0")/.."

work="${1:-$(mktemp -d)}"
rate="${RATE:-80}"
duration="${DURATION:-5s}"
addr="127.0.0.1:18931"
base="http://$addr"

cleanup() {
  [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$work/pmlsh" ./cmd/pmlsh
go build -o "$work/pmlshload" ./cmd/pmlshload
go run ./cmd/datagen -dataset Audio -maxn 2000 -out "$work/data.f64" >/dev/null

"$work/pmlsh" serve -data "$work/data.f64" -shards 4 -addr "$addr" \
  -save "$work/final.pmlsh" 2>"$work/serve.log" &
server_pid=$!

for _ in $(seq 1 100); do
  curl -sf "$base/readyz" >/dev/null 2>&1 && break
  kill -0 "$server_pid" 2>/dev/null || { echo "server died:"; cat "$work/serve.log"; exit 1; }
  sleep 0.2
done
curl -sf "$base/readyz" | grep -q ready

echo "== info"
curl -sf "$base/v1/info"; echo
dim=$(curl -sf "$base/v1/info" | sed 's/.*"dim":\([0-9]*\).*/\1/')

# One of each request family, built from a real query vector.
q=$(python3 -c "print('[' + ','.join(['0.01']*$dim) + ']')" 2>/dev/null \
  || awk -v d="$dim" 'BEGIN{s="[";for(i=0;i<d;i++)s=s (i?",":"") "0.01";print s "]"}')
echo "== search";  curl -sf "$base/v1/search" -d "{\"q\":$q,\"k\":3}" | head -c 200; echo
echo "== insert";  id=$(curl -sf "$base/v1/insert" -d "{\"p\":$q}" | sed 's/[^0-9]*//g'); echo "id=$id"
echo "== delete";  curl -sf "$base/v1/delete" -d "{\"id\":$id}"; echo
echo "== compact"; curl -sf -X POST "$base/v1/compact"; echo
echo "== bad request is 400, not 5xx"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/search" -d '{"q":[1],"k":3}')
[[ "$code" == 400 ]] || { echo "expected 400, got $code"; exit 1; }

echo "== load burst ($rate/s for $duration)"
"$work/pmlshload" -url "$base" -data "$work/data.f64" \
  -rate "$rate" -duration "$duration" -read 0.85 -compact-every 2s

echo "== metrics account for traffic"
curl -sf "$base/metrics" | grep -E 'pmlsh_http_requests_total\{route="/v1/search"' | head -3
curl -sf "$base/metrics" | grep -q 'pmlsh_index_live_points'

echo "== graceful drain"
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
grep -q "drain started" "$work/serve.log"
grep -q "checkpoint written" "$work/serve.log"
"$work/pmlsh" info -index "$work/final.pmlsh"

echo "serve smoke OK ($work)"
