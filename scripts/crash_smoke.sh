#!/usr/bin/env bash
# crash_smoke.sh — end-to-end crash-recovery smoke of the WAL-backed
# serving path: generate a dataset, start `pmlsh serve -data-dir` (WAL
# + background checkpoints), churn it with pmlshload traffic plus
# directed acknowledged mutations, kill -9 the server mid-flight, then
# reopen the same state directory and assert
#
#   - recovery succeeds and reports replayed state,
#   - the acknowledged insert is still answerable (search finds it),
#   - the acknowledged delete stayed deleted (no resurrection),
#   - the id sequence continues past the pre-crash high-water mark,
#   - recall against fresh traffic still holds (pmlshload oracle).
#
# Usage: scripts/crash_smoke.sh [workdir]
#   RATE     pmlshload arrival rate  (default: 80/s)
#   DURATION pmlshload run length    (default: 4s)
set -euo pipefail
cd "$(dirname "$0")/.."

work="${1:-$(mktemp -d)}"
rate="${RATE:-80}"
duration="${DURATION:-4s}"
addr="127.0.0.1:18932"
base="http://$addr"
state="$work/state"

cleanup() {
  [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$work/pmlsh" ./cmd/pmlsh
go build -o "$work/pmlshload" ./cmd/pmlshload
go run ./cmd/datagen -dataset Audio -maxn 2000 -out "$work/data.f64" >/dev/null

wait_ready() {
  for _ in $(seq 1 150); do
    curl -sf "$base/readyz" >/dev/null 2>&1 && return 0
    kill -0 "$server_pid" 2>/dev/null || { echo "server died:"; cat "$1"; exit 1; }
    sleep 0.2
  done
  echo "server never became ready:"; cat "$1"; exit 1
}

echo "== boot: bootstrap WAL state from the dataset"
"$work/pmlsh" serve -data "$work/data.f64" -data-dir "$state" -shards 4 \
  -checkpoint-interval 1s -fsync always -addr "$addr" 2>"$work/serve1.log" &
server_pid=$!
wait_ready "$work/serve1.log"

dim=$(curl -sf "$base/v1/info" | sed 's/.*"dim":\([0-9]*\).*/\1/')
probe=$(awk -v d="$dim" 'BEGIN{s="[";for(i=0;i<d;i++)s=s (i?",":"") "123.5";print s "]"}')

echo "== acknowledged mutations the crash must not lose"
ins_id=$(curl -sf "$base/v1/insert" -d "{\"p\":$probe}" | sed 's/[^0-9]*//g')
del_id=$(curl -sf "$base/v1/insert" -d "{\"p\":$probe}" | sed 's/[^0-9]*//g')
curl -sf "$base/v1/delete" -d "{\"id\":$del_id}" >/dev/null
echo "inserted id=$ins_id, deleted id=$del_id"

echo "== churn under load ($rate/s for $duration)"
"$work/pmlshload" -url "$base" -data "$work/data.f64" \
  -rate "$rate" -duration "$duration" -read 0.7 -compact-every 2s
ids_before=$(curl -sf "$base/v1/info" | sed 's/.*"ids":\([0-9]*\).*/\1/')
curl -sf "$base/metrics" | grep 'pmlsh_wal_appends_total'

echo "== kill -9 mid-flight"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
ls "$state"

echo "== reopen the state directory"
"$work/pmlsh" serve -data-dir "$state" -checkpoint-interval 1s \
  -fsync always -addr "$addr" 2>"$work/serve2.log" &
server_pid=$!
wait_ready "$work/serve2.log"
grep -q "state recovered" "$work/serve2.log"

echo "== acknowledged insert survived"
hits=$(curl -sf "$base/v1/search" -d "{\"q\":$probe,\"k\":3}")
echo "$hits" | grep -q "\"id\":$ins_id" \
  || { echo "inserted id $ins_id lost after crash: $hits"; exit 1; }

echo "== acknowledged delete stayed deleted"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/delete" -d "{\"id\":$del_id}")
[[ "$code" == 400 ]] || { echo "deleted id $del_id resurrected (delete again: $code)"; exit 1; }

echo "== id sequence continues past the pre-crash high-water mark"
ids_after=$(curl -sf "$base/v1/info" | sed 's/.*"ids":\([0-9]*\).*/\1/')
new_id=$(curl -sf "$base/v1/insert" -d "{\"p\":$probe}" | sed 's/[^0-9]*//g')
echo "ids before=$ids_before after=$ids_after, fresh id=$new_id"
[[ "$ids_after" -ge "$ids_before" ]] \
  || { echo "id high-water mark went backwards"; exit 1; }
[[ "$new_id" -ge "$ids_before" ]] \
  || { echo "fresh insert reused a pre-crash id"; exit 1; }

echo "== recall still holds after recovery"
"$work/pmlshload" -url "$base" -data "$work/data.f64" \
  -rate "$rate" -duration "$duration" -read 0.85 -compact-every 2s

echo "== clean shutdown closes the WAL"
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
grep -q "shutdown complete" "$work/serve2.log"

echo "crash smoke OK ($work)"
