package pmlsh

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/store"
)

// QuantKind selects the scalar-quantization codec used for candidate
// screening (Config.Quantize). See the Config field for semantics.
type QuantKind = store.QuantKind

// The quantization codecs: none (the default — no screening), f32
// (per-dimension float32 codes, 2× smaller than the raw rows), and i8
// (per-dimension affine int8 codes, 8× smaller).
const (
	QuantNone = store.QuantNone
	QuantF32  = store.QuantF32
	QuantI8   = store.QuantI8
)

// ParseQuantKind maps the spellings "none" (or ""), "f32" and "i8" to
// their QuantKind, for wiring command-line flags.
func ParseQuantKind(s string) (QuantKind, error) { return store.ParseQuantKind(s) }

// Metric selects the distance the index answers queries in
// (Config.Metric). See the package documentation's "Metrics" section
// for which guarantees each metric carries.
type Metric = metric.Kind

// The supported metrics: Euclidean distance (the default — the
// paper's setting, with the full (c,k) guarantee), cosine distance
// 1−cos(q,x) over vector direction, inner-product similarity (results
// ordered by descending ⟨q,x⟩, reported as Dist = −⟨q,x⟩), and
// Jaccard distance 1−|A∩B|/|A∪B| over integer token sets (BuildSets).
const (
	MetricL2           = metric.L2
	MetricCosine       = metric.Cosine
	MetricInnerProduct = metric.InnerProduct
	MetricJaccard      = metric.Jaccard
)

// ParseMetric maps the spellings "l2" (or "", "euclidean"), "cosine"
// ("angular"), "ip" ("dot", "mip", "innerproduct", "inner-product")
// and "jaccard" ("minhash") to their Metric, for wiring command-line
// flags.
func ParseMetric(s string) (Metric, error) { return metric.Parse(s) }

// AutoCompactAlways is a sentinel for Config.AutoCompactFraction that
// makes every Delete leaving at least one tombstone trigger a Compact.
// (A literal 0 cannot express this: the zero value selects the 0.3
// default.) It survives serialization round trips.
const AutoCompactAlways = core.AutoCompactAlways

// Neighbor is one query result: a point id (the row index passed to
// Build, unless custom ids were provided) and its exact distance to
// the query in the index's native metric — Euclidean under MetricL2,
// 1−cosθ under MetricCosine, −⟨q,x⟩ under MetricInnerProduct, and
// 1−Jaccard(A,B) under MetricJaccard.
type Neighbor struct {
	ID   int32
	Dist float64
}

// Pair is one closest-pair result: the ids of two distinct indexed
// points (I < J) and their exact distance in the index's native
// metric.
type Pair struct {
	I, J int32
	Dist float64
}

// QueryStats describes the work one query performed: the number of
// projected range-query rounds, the number of original-space distance
// verifications, the projected-space metric evaluations inside the
// tree, and the final search radius.
type QueryStats = core.QueryStats

// CPStats describes the work one closest-pair query performed: the
// number of candidate pairs consumed from the projected-space
// self-join, the number of exact distance verifications, and the
// projected-space metric evaluations inside the tree.
type CPStats = core.CPStats

// Params are the derived confidence-interval constants for a given
// approximation ratio c (Eq. 10 of the paper): the projected-radius
// multiplier T = sqrt(χ²_{α1}(m)), and the false-positive constants α2
// and β = 2α2 that size the candidate set.
type Params = core.Params

// Config controls index construction. The zero value reproduces the
// paper's evaluation defaults.
type Config struct {
	// M is the number of hash functions, i.e. the projected
	// dimensionality (0 = 15).
	M int
	// NumPivots is the PM-tree pivot count s (0 = 5). Set ZeroPivots to
	// request a plain M-tree instead.
	NumPivots int
	// ZeroPivots forces s = 0 (a plain M-tree) when NumPivots is 0.
	ZeroPivots bool
	// Capacity is the PM-tree node capacity (0 = 16).
	Capacity int
	// Alpha1 is the confidence-interval parameter α₁ (0 = 1/e). Smaller
	// values widen the projected search radius: higher recall, more
	// work.
	Alpha1 float64
	// Seed makes builds deterministic.
	Seed int64
	// UseRTree swaps the PM-tree for an R-tree over the projections —
	// the paper's R-LSH ablation. Slower on range-query workloads
	// (Table 2) but otherwise equivalent.
	UseRTree bool
	// AutoCompactFraction is the deleted share of the vector store at
	// which a Delete triggers an automatic Compact (0 = 0.3; negative
	// disables auto-compaction; values above 1 are rejected; the
	// AutoCompactAlways sentinel compacts on every tombstone). With
	// Shards > 1 the fraction applies per shard.
	AutoCompactFraction float64
	// Shards splits the index into N independent shards with ids
	// striped across them (0 and 1 both mean a single shard, which is
	// element-wise identical to earlier single-shard builds). With
	// N > 1 queries read atomically published per-shard snapshots and
	// never wait on a mutation — at the cost of one extra full replica
	// of the dataset per shard (the engine holds 2× the data). See the
	// package documentation for guidance on picking N.
	Shards int
	// Quantize attaches a scalar-quantized copy of the dataset (QuantF32
	// or QuantI8) and screens verification candidates with a provable
	// lower bound on their exact distance before touching the
	// full-precision rows. Screening is reject-only: every query answers
	// element-wise identically to an unquantized index — only memory
	// traffic changes. QuantNone (the zero value) disables it.
	Quantize QuantKind
	// Metric selects the distance function (the zero value is MetricL2,
	// which reproduces the paper exactly). MetricCosine and
	// MetricInnerProduct reduce to internal L2 searches over transformed
	// vectors at Build/Insert time; MetricJaccard switches to a MinHash
	// band-LSH backend and requires BuildSets instead of Build. Results
	// are always reported in the native metric.
	Metric Metric
	// MinHashBands and MinHashRows shape the MetricJaccard signature:
	// k = bands×rows hash functions, banded so two sets collide in some
	// bucket with probability 1−(1−s^rows)^bands at Jaccard similarity
	// s. Zero values select 16 bands × 8 rows. Ignored by the vector
	// metrics.
	MinHashBands int
	MinHashRows  int
	// MinHashThreshold drops candidates whose exact Jaccard similarity
	// falls below it after rescoring (0 keeps everything). Ignored by
	// the vector metrics.
	MinHashThreshold float64
}

// Index is a PM-LSH index over a mutable dataset. Queries go through
// the unified request API — Search, SearchBatch, SearchPairs,
// SearchBall — which takes a context plus per-query functional options
// (ratio, confidence width, result filter, budget, statistics sink);
// the fixed-signature legacy methods are shims over it.
//
// Every method is safe for concurrent use, and reads are snapshot
// isolated: a query pins an atomically published snapshot of each
// shard, so queries never wait on Insert, Delete or Compact and never
// wait on each other. A query always observes a consistent state and
// never returns a deleted point. Mutations serialize per shard; with
// Config.Shards > 1, mutations to different shards run concurrently.
//
// Ids are stable: Insert assigns them from a monotone counter and they
// are never reused or remapped — not by Delete, not by Compact — so an
// id a caller holds refers to the same point for the index's lifetime.
// With Shards > 1, concurrent Inserts receive unique ids that may
// interleave out of call order; sequential inserts stay consecutive.
type Index struct {
	ix *core.Engine
}

// Build constructs an index over data. Every point must have the same
// dimensionality. The rows are copied once into the index's contiguous
// vector store, so the caller keeps ownership of data and may reuse or
// mutate it after Build returns.
func Build(data [][]float64, cfg Config) (*Index, error) {
	ix, err := core.BuildEngine(data, coreConfig(cfg))
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// BuildSets constructs a MetricJaccard index over integer token sets
// (cfg.Metric must be MetricJaccard). Each set is canonicalized
// (sorted, deduplicated) and copied, so the caller keeps ownership.
// Queries against a set index pass the query set's tokens as
// non-negative integer-valued float64s (every token must be ≤ 2⁵³ so
// the float64 round trip is exact); results report Jaccard distance
// 1−|A∩B|/|A∪B|.
func BuildSets(sets [][]uint64, cfg Config) (*Index, error) {
	ix, err := core.BuildSetsEngine(sets, coreConfig(cfg))
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// coreConfig maps the public config onto the engine's.
func coreConfig(cfg Config) core.Config {
	return core.Config{
		M:                   cfg.M,
		NumPivots:           cfg.NumPivots,
		ExplicitZeroPivots:  cfg.ZeroPivots,
		Capacity:            cfg.Capacity,
		Alpha1:              cfg.Alpha1,
		Seed:                cfg.Seed,
		UseRTree:            cfg.UseRTree,
		AutoCompactFraction: cfg.AutoCompactFraction,
		Quantize:            cfg.Quantize,
		Shards:              cfg.Shards,
		Metric:              cfg.Metric,
		MinHashBands:        cfg.MinHashBands,
		MinHashRows:         cfg.MinHashRows,
		MinHashThreshold:    cfg.MinHashThreshold,
	}
}

// Insert adds one point to the index and returns its assigned id: the
// next value of a monotone counter, never a reused one. Insert may run
// concurrently with queries and other mutations.
func (x *Index) Insert(p []float64) (int32, error) { return x.ix.Insert(p) }

// Delete removes the point with the given id. The id is retired
// forever; the point's storage row is tombstoned and recycled by a
// later Insert. When the tombstoned share of the store reaches
// Config.AutoCompactFraction, Delete compacts the index before
// returning. Deleting an unknown or already-deleted id is an error.
// Delete may run concurrently with queries and other mutations.
func (x *Index) Delete(id int32) error { return x.ix.Delete(id) }

// SetQuantize installs (QuantF32 or QuantI8), refits, or drops
// (QuantNone) the quantized screening codec over the current dataset —
// the runtime form of Config.Quantize, usable on a loaded or
// already-built index. Refitting (calling it again with the same kind)
// recovers screen selectivity after inserts far outside the fitted
// range have widened the per-dimension error slack. Queries before and
// after answer identically; only the screening work changes.
func (x *Index) SetQuantize(kind QuantKind) error { return x.ix.SetQuantize(kind) }

// Quantize reports the screening codec the index currently maintains.
func (x *Index) Quantize() QuantKind { return x.ix.Quantize() }

// Compact rebuilds the index over its live points: the vector store is
// repacked (dropping tombstones), the projected-space tree is bulk
// loaded from scratch — restoring the tight covering regions that
// deletions loosen — and the query-radius distance sample is
// refreshed. Ids are preserved. Compact rebuilds shard by shard and
// swaps each rebuilt snapshot in atomically, so queries keep answering
// throughout; only mutations to the shard being rebuilt wait.
func (x *Index) Compact() error { return x.ix.Compact() }

// Len returns the size of the id space: the number of ids ever
// assigned. With no deletions this is the number of indexed points;
// under churn, use LiveLen for the live count.
func (x *Index) Len() int { return x.ix.Len() }

// LiveLen returns the number of live (not deleted) points.
func (x *Index) LiveLen() int { return x.ix.LiveLen() }

// IsLive reports whether id refers to a live (inserted and not yet
// deleted) point.
func (x *Index) IsLive(id int32) bool { return x.ix.IsLive(id) }

// Dim returns the dimensionality of indexed points (0 for a
// MetricJaccard index, whose points are sets, not vectors).
func (x *Index) Dim() int { return x.ix.Dim() }

// Metric returns the distance metric the index was built with.
func (x *Index) Metric() Metric { return x.ix.Metric() }

// M returns the projected dimensionality (hash-function count).
func (x *Index) M() int { return x.ix.M() }

// Shards returns the shard count (1 unless Config.Shards asked for
// more).
func (x *Index) Shards() int { return x.ix.Shards() }

// Info is one consistent snapshot of the index's observable state —
// what a dashboard or the /v1/info serving endpoint reports.
type Info struct {
	// Dim is the original dimensionality; M the projected one.
	Dim, M int
	// Shards is the shard count.
	Shards int
	// IDs is the size of the id space: ids ever assigned.
	IDs int
	// Live is the number of live (not deleted) points.
	Live int
	// Dead is the number of tombstoned storage rows awaiting Compact.
	Dead int
	// Quantize is the screening codec currently maintained.
	Quantize QuantKind
	// Compactions counts Compact operations (explicit and automatic)
	// completed since the index was built or loaded.
	Compactions int64
	// Metric is the distance metric the index was built with.
	Metric Metric
}

// Info returns one consistent snapshot of the index's observable
// state. All fields are read from a single pinned snapshot of every
// shard, so they are mutually consistent (Live ≤ IDs, Dead ≤ IDs−Live)
// even while mutations run — unlike an ad-hoc sequence of Len /
// LiveLen / Quantize calls, between which a mutator can land.
func (x *Index) Info() Info {
	ei := x.ix.Info()
	return Info{
		Dim:         ei.Dim,
		M:           ei.M,
		Shards:      ei.Shards,
		IDs:         ei.IDs,
		Live:        ei.Live,
		Dead:        ei.Dead,
		Quantize:    ei.Quantize,
		Compactions: ei.Compactions,
		Metric:      ei.Metric,
	}
}

// KNN answers a (c,k)-ANN query: it returns up to k points whose i-th
// member is, with constant probability, within c²·||q,o*_i|| of the
// query (o*_i the exact i-th NN). Results are sorted by distance.
// c must exceed 1; c <= 0 selects the default 1.5.
//
// KNN is a shim over Search — Search(ctx, q, k, WithRatio(c)) — and
// answers element-wise identically to it. (The shims bypass the
// option-closure layer and pass the folded options value straight to
// the engine, keeping the legacy hot path allocation-free.)
func (x *Index) KNN(q []float64, k int, c float64) ([]Neighbor, error) {
	res, err := x.ix.Search(context.Background(), q, k, core.SearchOptions{C: c})
	return convert(res), err
}

// KNNWithStats is KNN plus per-query work statistics — a shim over
// Search with WithStats. Every field is exact for this query,
// ProjectedDistComps included, no matter how many queries run
// concurrently.
func (x *Index) KNNWithStats(q []float64, k int, c float64) ([]Neighbor, QueryStats, error) {
	var st QueryStats
	res, err := x.ix.Search(context.Background(), q, k, core.SearchOptions{C: c, Stats: &st})
	return convert(res), st, err
}

// KNNBatch answers many (c,k)-ANN queries concurrently, fanning them
// across a worker pool of up to GOMAXPROCS goroutines — a shim over
// SearchBatch. out[i] holds the neighbors of qs[i], in the same order
// KNN would return them; results are identical to calling KNN per
// query, only the scheduling differs.
func (x *Index) KNNBatch(qs [][]float64, k int, c float64) ([][]Neighbor, error) {
	res, err := x.ix.SearchBatch(context.Background(), qs, k, core.SearchOptions{C: c})
	if res == nil {
		return nil, err
	}
	out := make([][]Neighbor, len(res))
	for i, r := range res {
		out[i] = convert(r)
	}
	return out, err
}

// ClosestPairs answers a (c,k)-closest-pair query: it returns up to k
// pairs of distinct indexed points such that, with constant
// probability, the i-th returned distance is within factor c of the
// exact i-th closest pair distance. Results are sorted by distance and
// each unordered pair appears at most once. c must exceed 1; c <= 0
// selects the default 1.5. k is clamped to the number of distinct
// pairs, and an index with fewer than two points returns no pairs.
//
// The query runs a dual-branch self-join over the PM-tree in projected
// space, so it requires the default PM-tree index; an index built with
// UseRTree returns an error.
//
// ClosestPairs is a shim over SearchPairs and answers element-wise
// identically to it.
func (x *Index) ClosestPairs(k int, c float64) ([]Pair, error) {
	res, err := x.ix.SearchPairs(context.Background(), k, core.SearchOptions{C: c})
	return convertPairs(res), err
}

// ClosestPairsWithStats is ClosestPairs plus per-query work
// statistics — a shim over SearchPairs with WithPairStats. Every
// field, ProjectedDistComps included, is exact for this query.
func (x *Index) ClosestPairsWithStats(k int, c float64) ([]Pair, CPStats, error) {
	var st CPStats
	res, err := x.ix.SearchPairs(context.Background(), k, core.SearchOptions{C: c, PairStats: &st})
	return convertPairs(res), st, err
}

// ClosestPairsParallel is ClosestPairs with candidate verification
// fanned across a worker pool of up to GOMAXPROCS goroutines
// (mirroring KNNBatch) — a shim over SearchPairs with
// WithParallelVerify. Termination is checked per verification batch
// instead of per pair, so it may examine slightly more candidates than
// ClosestPairs — the result carries the same (c,k) guarantee and is,
// rank by rank, at least as close.
func (x *Index) ClosestPairsParallel(k int, c float64) ([]Pair, error) {
	res, err := x.ix.SearchPairs(context.Background(), k, core.SearchOptions{C: c, Parallel: true})
	return convertPairs(res), err
}

// BallCover answers an (r,c)-ball-cover query (Definition 3): if some
// point lies within r of q it returns, with constant probability, a
// point within c·r; if no point lies within c·r it returns nil.
// BallCover is a shim over SearchBall and answers identically to it —
// except that, unlike the options surface (where a non-positive ratio
// selects the default), BallCover keeps its original contract and
// rejects c <= 1.
func (x *Index) BallCover(q []float64, r, c float64) (*Neighbor, error) {
	res, err := x.ix.BallCover(q, r, c)
	if err != nil || res == nil {
		return nil, err
	}
	return &Neighbor{ID: res.ID, Dist: res.Dist}, nil
}

// DeriveParams exposes the confidence-interval constants used for a
// given approximation ratio.
func (x *Index) DeriveParams(c float64) (Params, error) {
	return x.ix.DeriveParams(c)
}

// WriteTo serializes the index (projection, tree structure, dataset
// with tombstones, id map, distance sample; with Shards > 1 the shard
// layout too) to w in a little-endian binary format. A loaded index
// answers queries identically to the saved one, holds the same live
// set and retired ids, and recycles storage slots in the same order.
// Like queries, WriteTo reads pinned snapshots — it neither waits on
// concurrent mutations nor makes them wait. A single-shard index
// writes exactly the pre-sharding stream format.
func (x *Index) WriteTo(w io.Writer) (int64, error) { return x.ix.WriteTo(w) }

// Load deserializes an index written with WriteTo, including streams
// written by earlier versions of this package (which load with a
// single shard).
func Load(r io.Reader) (*Index, error) {
	ix, err := core.LoadEngine(r)
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// convertPairs maps core pairs to the public type, preserving
// nil-in/nil-out: an empty query answer stays nil instead of becoming
// an allocated zero-length slice.
func convertPairs(res []core.Pair) []Pair {
	if res == nil {
		return nil
	}
	out := make([]Pair, len(res))
	for i, r := range res {
		out[i] = Pair{I: r.I, J: r.J, Dist: r.Dist}
	}
	return out
}

// convert maps core results to the public type, preserving
// nil-in/nil-out (see convertPairs).
func convert(res []core.Result) []Neighbor {
	if res == nil {
		return nil
	}
	out := make([]Neighbor, len(res))
	for i, r := range res {
		out[i] = Neighbor{ID: r.ID, Dist: r.Dist}
	}
	return out
}
