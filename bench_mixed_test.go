package pmlsh

// Mixed read/write benchmarks: query latency and throughput measured
// while a mutator goroutine churns the index with Insert, Delete and
// periodic Compact. Three engines are compared on identical workloads:
//
//   - rwmutex: the bare single-shard core.Index, whose mutations take
//     a writer lock that stalls every reader (the pre-sharding serving
//     path, kept as the baseline);
//   - shards=1: the public Index at the default shard count — same
//     single-partition answers, but reads pin a published snapshot and
//     never wait;
//   - shards=4: four-way sharding, where mutations also spread across
//     partitions.
//
// The p99 benchmarks report tail latency ("p99-ns" / "p50-ns"), the
// metric the snapshot scheme exists to fix: under the RWMutex engine a
// reader arriving during a Compact waits the whole rebuild out, so the
// tail tracks rebuild time; under the sharded engine it reads the old
// snapshot and the tail tracks ordinary query time. The GOMAXPROCS
// sweep measures aggregate read throughput at 2, 4 and 8 procs.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// mixedEngine is the slice of the index surface the mixed benchmarks
// drive, implemented by both the RWMutex baseline and the public
// engine.
type mixedEngine struct {
	knn     func(q []float64, k int) error
	insert  func(p []float64) (int32, error)
	delete  func(id int32) error
	compact func() error
}

func rwmutexEngine(b *testing.B, data [][]float64) mixedEngine {
	b.Helper()
	ix, err := core.Build(data, core.Config{Seed: 5, AutoCompactFraction: -1})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	return mixedEngine{
		knn: func(q []float64, k int) error {
			_, err := ix.Search(ctx, q, k, core.SearchOptions{})
			return err
		},
		insert:  ix.Insert,
		delete:  ix.Delete,
		compact: ix.Compact,
	}
}

func shardedEngine(b *testing.B, data [][]float64, shards int) mixedEngine {
	b.Helper()
	ix, err := Build(data, Config{Seed: 5, AutoCompactFraction: -1, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	return mixedEngine{
		knn: func(q []float64, k int) error {
			_, err := ix.KNN(q, k, 1.5)
			return err
		},
		insert:  ix.Insert,
		delete:  ix.Delete,
		compact: ix.Compact,
	}
}

// mixedEngines enumerates the benchmark grid in display order.
func mixedEngines(data [][]float64) []struct {
	name string
	mk   func(b *testing.B) mixedEngine
} {
	return []struct {
		name string
		mk   func(b *testing.B) mixedEngine
	}{
		{"engine=rwmutex", func(b *testing.B) mixedEngine { return rwmutexEngine(b, data) }},
		{"engine=shards1", func(b *testing.B) mixedEngine { return shardedEngine(b, data, 1) }},
		{"engine=shards4", func(b *testing.B) mixedEngine { return shardedEngine(b, data, 4) }},
	}
}

// startMutator runs a steady-state churn loop — insert a point, delete
// the previously inserted one, Compact every compactEvery cycles —
// until stop closes. Live count stays within one of the build size, so
// readers measure lock/snapshot behavior, not dataset drift.
func startMutator(b *testing.B, e mixedEngine, pts [][]float64, compactEvery int, stop chan struct{}, wg *sync.WaitGroup) {
	b.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := int32(-1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id, err := e.insert(pts[i%len(pts)])
			if err != nil {
				b.Error(err)
				return
			}
			if prev >= 0 {
				if err := e.delete(prev); err != nil {
					b.Error(err)
					return
				}
			}
			prev = id
			if compactEvery > 0 && i%compactEvery == compactEvery-1 {
				if err := e.compact(); err != nil {
					b.Error(err)
					return
				}
			}
		}
	}()
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// BenchmarkMixedReadP99 measures single-reader KNN latency while the
// mutator churns (Compact every 24 write cycles) and reports the p50
// and p99 of the per-query latencies next to the mean ns/op.
func BenchmarkMixedReadP99(b *testing.B) {
	w := workload(b)
	for _, eng := range mixedEngines(w.Dataset.Points) {
		b.Run(eng.name, func(b *testing.B) {
			e := eng.mk(b)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			startMutator(b, e, w.Dataset.Points, 24, stop, &wg)
			lat := make([]float64, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if err := e.knn(w.Queries[i%len(w.Queries)], 50); err != nil {
					b.Fatal(err)
				}
				lat[i] = float64(time.Since(t0).Nanoseconds())
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			sort.Float64s(lat)
			b.ReportMetric(percentile(lat, 0.50), "p50-ns")
			b.ReportMetric(percentile(lat, 0.99), "p99-ns")
		})
	}
}

// BenchmarkMixedThroughput measures aggregate KNN throughput of
// GOMAXPROCS parallel readers under the same churn, swept across
// GOMAXPROCS 2, 4 and 8 — the sweep that shows reader scaling once the
// writer lock is out of the read path. ns/op is per query; aggregate
// QPS is procs/(ns/op).
func BenchmarkMixedThroughput(b *testing.B) {
	w := workload(b)
	for _, procs := range []int{2, 4, 8} {
		for _, eng := range mixedEngines(w.Dataset.Points) {
			if eng.name == "engine=shards1" {
				continue // the p99 grid covers it; the sweep contrasts the poles
			}
			b.Run(fmt.Sprintf("%s/procs=%d", eng.name, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				e := eng.mk(b)
				stop := make(chan struct{})
				var wg sync.WaitGroup
				startMutator(b, e, w.Dataset.Points, 24, stop, &wg)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						if err := e.knn(w.Queries[i%len(w.Queries)], 50); err != nil {
							b.Error(err)
							return
						}
						i++
					}
				})
				b.StopTimer()
				close(stop)
				wg.Wait()
			})
		}
	}
}
