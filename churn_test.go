package pmlsh

// Churn-oracle regression tests: randomized interleavings of
// Insert/Delete/KNN/ClosestPairs against a map-based oracle of the
// live set, with recall and overall-ratio gates computed by brute
// force (internal/lscan, Fraction 1) over the survivors only. All
// seeds are fixed; sizes are -short-safe. The 40%-delete cases are the
// issue's acceptance criterion: after deleting a random 40% of a
// seeded dataset, KNN and ClosestPairs must still meet recall >= 0.8
// and ratio <= c against exact answers over the live set.

import (
	"math/rand"
	"testing"

	"repro/internal/lscan"
)

// churnOracle tracks the live set beside the index: id -> vector.
type churnOracle struct {
	live map[int32][]float64
	ids  []int32 // live ids, for O(1) random choice
}

func newChurnOracle() *churnOracle {
	return &churnOracle{live: map[int32][]float64{}}
}

func (o *churnOracle) add(id int32, p []float64) {
	o.live[id] = p
	o.ids = append(o.ids, id)
}

func (o *churnOracle) removeRandom(rng *rand.Rand) int32 {
	i := rng.Intn(len(o.ids))
	id := o.ids[i]
	o.ids[i] = o.ids[len(o.ids)-1]
	o.ids = o.ids[:len(o.ids)-1]
	delete(o.live, id)
	return id
}

// survivors materializes the live set for brute force: rows plus the
// id each row maps back to.
func (o *churnOracle) survivors() ([][]float64, []int32) {
	rows := make([][]float64, 0, len(o.ids))
	ids := make([]int32, 0, len(o.ids))
	for _, id := range o.ids {
		rows = append(rows, o.live[id])
		ids = append(ids, id)
	}
	return rows, ids
}

// checkKNNQuality runs queries against the index and exact brute force
// over the live set, asserting no dead ids, recall >= minRecall and
// per-rank ratio <= c.
func checkKNNQuality(t *testing.T, label string, ix *Index, o *churnOracle,
	queries [][]float64, k int, c, minRecall float64) {
	t.Helper()
	rows, ids := o.survivors()
	sc, err := lscan.New(rows, lscan.Config{Fraction: 1.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k > len(rows) {
		k = len(rows)
	}
	var recallSum float64
	for qi, q := range queries {
		got, err := ix.KNN(q, k, c)
		if err != nil {
			t.Fatalf("%s query %d: %v", label, qi, err)
		}
		if len(got) != k {
			t.Fatalf("%s query %d: %d results, want %d", label, qi, len(got), k)
		}
		exactRows, err := sc.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		exact := make(map[int32]bool, k)
		for _, r := range exactRows {
			exact[ids[r.ID]] = true
		}
		hits := 0
		for rank, nb := range got {
			if _, ok := o.live[nb.ID]; !ok {
				t.Fatalf("%s query %d: returned dead id %d", label, qi, nb.ID)
			}
			if exact[nb.ID] {
				hits++
			}
			// The (c,k) guarantee, rank by rank.
			if nb.Dist > c*exactRows[rank].Dist+1e-9 {
				t.Fatalf("%s query %d rank %d: dist %v exceeds c×exact %v",
					label, qi, rank, nb.Dist, exactRows[rank].Dist)
			}
		}
		recallSum += float64(hits) / float64(k)
	}
	if recall := recallSum / float64(len(queries)); recall < minRecall {
		t.Fatalf("%s: recall %.3f below %.2f", label, recall, minRecall)
	}
}

// checkCPQuality asserts closest pairs over the live set: no dead ids,
// and the i-th returned distance within factor c of the exact i-th
// closest surviving pair.
func checkCPQuality(t *testing.T, label string, ix *Index, o *churnOracle, k int, c float64) {
	t.Helper()
	rows, _ := o.survivors()
	exact, err := lscan.ClosestPairs(rows, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.ClosestPairs(k, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(exact) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(exact))
	}
	for i, p := range got {
		if _, ok := o.live[p.I]; !ok {
			t.Fatalf("%s pair %d: dead id %d", label, i, p.I)
		}
		if _, ok := o.live[p.J]; !ok {
			t.Fatalf("%s pair %d: dead id %d", label, i, p.J)
		}
		if p.Dist > c*exact[i].Dist+1e-9 {
			t.Fatalf("%s pair %d: dist %v exceeds c×exact %v", label, i, p.Dist, exact[i].Dist)
		}
	}
}

// TestChurnDelete40Acceptance is the acceptance criterion: delete a
// random 40% of a seeded dataset, then gate KNN and ClosestPairs
// quality against brute force over the survivors.
func TestChurnDelete40Acceptance(t *testing.T) {
	const k, c = 10, 1.5
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"pmtree", Config{Seed: 101}},
		{"pmtree-autocompact-off", Config{Seed: 101, AutoCompactFraction: -1}},
		{"rtree", Config{Seed: 101, UseRTree: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := testData(t, 1200)
			ix, err := Build(ds.Points, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			o := newChurnOracle()
			for i, p := range ds.Points {
				o.add(int32(i), p)
			}
			rng := rand.New(rand.NewSource(102))
			for i := 0; i < 480; i++ { // 40% of 1200
				if err := ix.Delete(o.removeRandom(rng)); err != nil {
					t.Fatal(err)
				}
			}
			if ix.LiveLen() != 720 {
				t.Fatalf("LiveLen=%d, want 720", ix.LiveLen())
			}
			queries := ds.Queries(25, 103)
			checkKNNQuality(t, tc.name, ix, o, queries, k, c, 0.8)
			if !tc.cfg.UseRTree {
				checkCPQuality(t, tc.name, ix, o, 12, c)
			}
			// Compaction must preserve the gates.
			if err := ix.Compact(); err != nil {
				t.Fatal(err)
			}
			checkKNNQuality(t, tc.name+"/compacted", ix, o, queries, k, c, 0.8)
			if !tc.cfg.UseRTree {
				checkCPQuality(t, tc.name+"/compacted", ix, o, 12, c)
			}
		})
	}
}

// TestChurnRandomInterleavings is the table-driven oracle test: per
// case, a seeded random program of Insert/Delete ops with periodic
// KNN + ClosestPairs quality checks over the current live set.
func TestChurnRandomInterleavings(t *testing.T) {
	const c = 1.5
	cases := []struct {
		name    string
		n       int
		ops     int
		delProb float64
		k       int
		cfg     Config
		seed    int64
	}{
		{"balanced", 600, 400, 0.5, 8, Config{Seed: 110}, 111},
		{"delete-heavy", 700, 500, 0.75, 6, Config{Seed: 112}, 113},
		{"insert-heavy", 400, 500, 0.25, 8, Config{Seed: 114}, 115},
		{"delete-heavy-no-autocompact", 700, 400, 0.75, 6, Config{Seed: 116, AutoCompactFraction: -1}, 117},
		{"rtree-balanced", 500, 300, 0.5, 6, Config{Seed: 118, UseRTree: true}, 119},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := testData(t, tc.n)
			ix, err := Build(ds.Points, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			o := newChurnOracle()
			for i, p := range ds.Points {
				o.add(int32(i), p)
			}
			rng := rand.New(rand.NewSource(tc.seed))
			dim := ix.Dim()
			check := func(label string) {
				queries := make([][]float64, 8)
				for i := range queries {
					// Query near a random live point so ground truth is
					// non-degenerate.
					base := o.live[o.ids[rng.Intn(len(o.ids))]]
					q := make([]float64, dim)
					for j := range q {
						q[j] = base[j] + 0.1*rng.NormFloat64()
					}
					queries[i] = q
				}
				checkKNNQuality(t, tc.name+"/"+label, ix, o, queries, tc.k, c, 0.8)
				if !tc.cfg.UseRTree {
					checkCPQuality(t, tc.name+"/"+label, ix, o, 6, c)
				}
			}
			every := tc.ops / 4
			for op := 1; op <= tc.ops; op++ {
				if rng.Float64() < tc.delProb && len(o.ids) > tc.k+2 {
					if err := ix.Delete(o.removeRandom(rng)); err != nil {
						t.Fatal(err)
					}
				} else {
					base := ds.Points[rng.Intn(len(ds.Points))]
					p := make([]float64, dim)
					for j := range p {
						p[j] = base[j] + 0.05*rng.NormFloat64()
					}
					id, err := ix.Insert(p)
					if err != nil {
						t.Fatal(err)
					}
					o.add(id, p)
				}
				if ix.LiveLen() != len(o.ids) {
					t.Fatalf("op %d: LiveLen=%d oracle=%d", op, ix.LiveLen(), len(o.ids))
				}
				if op%every == 0 {
					check("mid")
				}
			}
			if err := ix.Compact(); err != nil {
				t.Fatal(err)
			}
			check("final-compacted")
		})
	}
}
