// Embedding-based recommendation: the paper's motivating "recommend-
// ation" use case [8]. Item embeddings live in a 256-dimensional space
// (Deep-like); a user's taste vector is the mean of recently liked
// items, and PM-LSH retrieves candidate items near that vector.
//
// Run with: go run ./examples/recommend
package main

import (
	"fmt"
	"log"
	"math/rand"

	pmlsh "repro"
	"repro/internal/dataset"
)

func main() {
	const (
		k = 8
		c = 1.5
	)

	// Deep-like item embeddings: 256 dimensions.
	spec, err := dataset.SpecByName("Deep", 0.01, 8000)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	items := ds.Points
	fmt.Printf("catalog: %d item embeddings x %d dims\n\n", len(items), spec.D)

	index, err := pmlsh.Build(items, pmlsh.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Three simulated users, each with a handful of liked items.
	rng := rand.New(rand.NewSource(5))
	for user := 1; user <= 3; user++ {
		// Liked items cluster around one seed item.
		seed := rng.Intn(len(items))
		liked := []int{seed}
		seedRes, err := index.KNN(items[seed], 4, c)
		if err != nil {
			log.Fatal(err)
		}
		for _, nb := range seedRes[1:] {
			liked = append(liked, int(nb.ID))
		}

		// Taste vector = mean of liked embeddings.
		taste := make([]float64, spec.D)
		for _, id := range liked {
			for j, v := range items[id] {
				taste[j] += v
			}
		}
		for j := range taste {
			taste[j] /= float64(len(liked))
		}

		// Retrieve recommendations, excluding already-liked items.
		res, err := index.KNN(taste, k+len(liked), c)
		if err != nil {
			log.Fatal(err)
		}
		likedSet := make(map[int32]bool)
		for _, id := range liked {
			likedSet[int32(id)] = true
		}
		fmt.Printf("user %d (liked items %v):\n", user, liked)
		shown := 0
		for _, nb := range res {
			if likedSet[nb.ID] {
				continue
			}
			shown++
			fmt.Printf("  recommend item %-6d (distance to taste %.3f)\n", nb.ID, nb.Dist)
			if shown == k {
				break
			}
		}
		fmt.Println()
	}
}
