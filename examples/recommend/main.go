// Embedding-based recommendation: the paper's motivating "recommend-
// ation" use case [8]. Item embeddings live in a 256-dimensional space
// (Deep-like); a user's taste vector is the mean of recently liked
// items, and PM-LSH retrieves candidate items near that vector.
//
// Already-liked items are excluded with WithFilter — the dominant
// real-world filtered-search scenario — so the engine returns exactly
// k eligible recommendations instead of over-fetching and discarding:
// a filtered-out candidate costs no exact distance computation, and
// the candidate budget counts only eligible items.
//
// Run with: go run ./examples/recommend
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	pmlsh "repro"
	"repro/internal/dataset"
)

func main() {
	const (
		k = 8
		c = 1.5
	)

	// Deep-like item embeddings: 256 dimensions.
	spec, err := dataset.SpecByName("Deep", 0.01, 8000)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	items := ds.Points
	fmt.Printf("catalog: %d item embeddings x %d dims\n\n", len(items), spec.D)

	index, err := pmlsh.Build(items, pmlsh.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Three simulated users, each with a handful of liked items.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	for user := 1; user <= 3; user++ {
		// Liked items cluster around one seed item.
		seed := rng.Intn(len(items))
		liked := []int{seed}
		seedRes, err := index.Search(ctx, items[seed], 4, pmlsh.WithRatio(c))
		if err != nil {
			log.Fatal(err)
		}
		for _, nb := range seedRes[1:] {
			liked = append(liked, int(nb.ID))
		}

		// Taste vector = mean of liked embeddings.
		taste := make([]float64, spec.D)
		for _, id := range liked {
			for j, v := range items[id] {
				taste[j] += v
			}
		}
		for j := range taste {
			taste[j] /= float64(len(liked))
		}

		// Retrieve recommendations. The filter excludes already-liked
		// items inside the engine, so the request asks for exactly k
		// results — no over-fetch, no post-filter pass.
		likedSet := make(map[int32]bool)
		for _, id := range liked {
			likedSet[int32(id)] = true
		}
		res, err := index.Search(ctx, taste, k,
			pmlsh.WithRatio(c),
			pmlsh.WithFilter(func(id int32) bool { return !likedSet[id] }))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d (liked items %v):\n", user, liked)
		for _, nb := range res {
			fmt.Printf("  recommend item %-6d (distance to taste %.3f)\n", nb.ID, nb.Dist)
		}
		fmt.Println()
	}
}
