// Near-duplicate detection: the paper's "de-duplication" use case [24],
// built on the (r,c)-ball-cover primitive (Definition 3 / Algorithm 1)
// rather than kNN. A document corpus is represented by MNIST-like
// feature vectors; some documents are near-copies of others. For each
// incoming document we ask BallCover whether anything lies within
// radius r — if yes, it is flagged as a duplicate.
//
// Run with: go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	pmlsh "repro"
	"repro/internal/dataset"
	"repro/internal/vec"
)

func main() {
	const c = 2.0

	// MNIST-like feature vectors.
	spec, err := dataset.SpecByName("MNIST", 0.05, 0) // 3000 points
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	corpus := ds.Points
	fmt.Printf("corpus: %d documents x %d features\n", len(corpus), spec.D)

	index, err := pmlsh.Build(corpus, pmlsh.Config{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate the duplicate radius: a small fraction of the typical
	// nearest-neighbor distance in the corpus.
	rng := rand.New(rand.NewSource(3))
	var nnSum float64
	const probes = 50
	for i := 0; i < probes; i++ {
		q := corpus[rng.Intn(len(corpus))]
		res, err := index.KNN(q, 2, c)
		if err != nil {
			log.Fatal(err)
		}
		if len(res) > 1 {
			nnSum += res[1].Dist
		}
	}
	dupRadius := 0.3 * nnSum / probes
	fmt.Printf("duplicate radius r = %.3f (30%% of mean NN distance)\n\n", dupRadius)

	// Incoming stream: half near-copies (perturbed by r/4 in total norm),
	// half genuinely new documents (drawn from an unrelated corpus with
	// different cluster centers).
	type incoming struct {
		vec   []float64
		isDup bool
	}
	var stream []incoming
	perDim := dupRadius / 4 / math.Sqrt(float64(spec.D))
	for i := 0; i < 20; i++ {
		src := corpus[rng.Intn(len(corpus))]
		copyVec := vec.Clone(src)
		for j := range copyVec {
			copyVec[j] += rng.NormFloat64() * perDim
		}
		stream = append(stream, incoming{copyVec, true})
	}
	freshSpec := spec
	freshSpec.Seed += 1000
	fresh, err := dataset.Generate(freshSpec)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		stream = append(stream, incoming{fresh.Points[rng.Intn(len(fresh.Points))], false})
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

	var tp, fp, fn, tn int
	for _, doc := range stream {
		hit, err := index.BallCover(doc.vec, dupRadius, c)
		if err != nil {
			log.Fatal(err)
		}
		flagged := hit != nil
		switch {
		case flagged && doc.isDup:
			tp++
		case flagged && !doc.isDup:
			fp++
		case !flagged && doc.isDup:
			fn++
		default:
			tn++
		}
	}
	fmt.Printf("flagged duplicates: %d true, %d false\n", tp, fp)
	fmt.Printf("passed as new:      %d correct, %d missed duplicates\n", tn, fn)
	fmt.Printf("precision %.2f, recall %.2f\n",
		safeDiv(tp, tp+fp), safeDiv(tp, tp+fn))
	fmt.Println("\n(BallCover guarantees: a duplicate within r is flagged with constant")
	fmt.Println(" probability; anything flagged lies within c·r.)")
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
