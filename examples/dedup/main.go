// Near-duplicate detection, rebuilt on the closest-pair engine: the
// journal extension of PM-LSH generalizes (c,k)-ANN to (c,k)-closest
// pair search, and de-duplicating a corpus IS a closest-pair workload —
// the near-copies are exactly the pairs with the smallest distances.
//
// The old version of this example faked dedup with one BallCover probe
// per incoming document (n independent probes, each re-projecting the
// point and re-traversing the tree, and blind to duplicates *between*
// indexed documents). One ClosestPairs query replaces the whole loop:
// a single self-join traversal over the PM-tree surfaces every
// near-duplicate pair in the indexed corpus at once.
//
// Run with: go run ./examples/dedup
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	pmlsh "repro"
	"repro/internal/dataset"
)

func main() {
	const c = 2.0

	// MNIST-like feature vectors.
	spec, err := dataset.SpecByName("MNIST", 0.05, 0) // 3000 points
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	corpus := ds.Points
	fmt.Printf("corpus: %d documents x %d features\n", len(corpus), spec.D)

	index, err := pmlsh.Build(corpus, pmlsh.Config{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate the duplicate radius: a small fraction of the typical
	// nearest-neighbor distance in the corpus.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	var nnSum float64
	const probes = 50
	for i := 0; i < probes; i++ {
		q := corpus[rng.Intn(len(corpus))]
		res, err := index.Search(ctx, q, 2, pmlsh.WithRatio(c))
		if err != nil {
			log.Fatal(err)
		}
		if len(res) > 1 {
			nnSum += res[1].Dist
		}
	}
	dupRadius := 0.3 * nnSum / probes
	fmt.Printf("duplicate radius r = %.3f (30%% of mean NN distance)\n\n", dupRadius)

	// Ingest a batch: near-copies of existing documents (perturbed by
	// r/4 in total norm) interleaved with genuinely new documents from
	// an unrelated collection. Insert keeps the index queryable.
	const numDups, numFresh = 25, 25
	type planted struct{ orig, copy int32 }
	var plants []planted
	perDim := dupRadius / 4 / math.Sqrt(float64(spec.D))
	for i := 0; i < numDups; i++ {
		src := rng.Intn(len(corpus))
		dup := make([]float64, spec.D)
		for j, v := range corpus[src] {
			dup[j] = v + rng.NormFloat64()*perDim
		}
		id, err := index.Insert(dup)
		if err != nil {
			log.Fatal(err)
		}
		plants = append(plants, planted{orig: int32(src), copy: id})
	}
	freshSpec := spec
	freshSpec.Seed += 1000
	fresh, err := dataset.Generate(freshSpec)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < numFresh; i++ {
		if _, err := index.Insert(fresh.Points[rng.Intn(len(fresh.Points))]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingested %d near-copies and %d new documents (index now %d)\n",
		numDups, numFresh, index.Len())

	// One closest-pair request replaces n per-document probes: ask for
	// a few more pairs than we planted, then keep those within the
	// duplicate radius. The stats sink travels as an option.
	var stats pmlsh.CPStats
	pairs, err := index.SearchPairs(ctx, 2*numDups,
		pmlsh.WithRatio(c), pmlsh.WithPairStats(&stats))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ClosestPairs: %d candidate pairs, %d pairs verified in %d round(s)\n",
		len(pairs), stats.Verified, stats.Rounds)

	want := make(map[[2]int32]bool, len(plants))
	for _, p := range plants {
		want[[2]int32{p.orig, p.copy}] = true
	}
	var tp, fp int
	for _, p := range pairs {
		if p.Dist > dupRadius {
			continue
		}
		if want[[2]int32{p.I, p.J}] {
			tp++
		} else {
			fp++ // a natural near-duplicate pair in the corpus
		}
	}
	fn := numDups - tp
	fmt.Printf("\nflagged duplicate pairs: %d planted, %d natural\n", tp, fp)
	fmt.Printf("missed planted pairs:    %d\n", fn)
	fmt.Printf("recall on planted pairs: %.2f\n", float64(tp)/float64(numDups))
	fmt.Println("\n(Guarantee: with constant probability the i-th reported distance is")
	fmt.Println(" within factor c of the true i-th closest pair distance, so duplicates")
	fmt.Println(" — the closest pairs of all — surface first.)")
}
