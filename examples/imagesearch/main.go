// Image similarity search: the scenario behind the paper's Cifar and
// Trevi datasets. We generate Cifar-like image descriptors (1024-d,
// low intrinsic dimensionality), index them with PM-LSH, and compare
// the approximate results against exact brute force — reporting the
// paper's metrics (recall and overall ratio) and the speedup.
//
// Run with: go run ./examples/imagesearch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pmlsh "repro"
	"repro/internal/dataset"
)

func main() {
	const (
		k       = 10
		c       = 1.5
		queries = 20
	)

	// Cifar-like descriptors: 1024 dimensions, ~9 intrinsic.
	spec, err := dataset.SpecByName("Cifar", 0.1, 0) // 5000 points
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s-like, %d descriptors x %d dims\n", spec.Name, spec.N, spec.D)

	start := time.Now()
	index, err := pmlsh.Build(ds.Points, pmlsh.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v\n\n", time.Since(start).Round(time.Millisecond))

	qs := ds.Queries(queries, 99)

	// Exact ground truth by brute force. For a like-for-like latency
	// comparison, time one query sequentially (GroundTruth itself runs
	// all queries in parallel).
	truth, err := dataset.GroundTruth(ds.Points, qs, k)
	if err != nil {
		log.Fatal(err)
	}
	exactStart := time.Now()
	if _, err := dataset.GroundTruth(ds.Points, qs[:1], k); err != nil {
		log.Fatal(err)
	}
	exactPerQuery := time.Since(exactStart)

	// Answer the whole query set with one SearchBatch request: the
	// batch fans across a worker pool under a single options value, and
	// WithBatchStats attributes exact per-query work counters even
	// though the queries run concurrently.
	stats := make([]pmlsh.QueryStats, queries)
	annStart := time.Now()
	results, err := index.SearchBatch(context.Background(), qs, k,
		pmlsh.WithRatio(c), pmlsh.WithBatchStats(stats))
	if err != nil {
		log.Fatal(err)
	}
	annTime := time.Since(annStart)
	var verified int
	for _, st := range stats {
		verified += st.Verified
	}

	var recallSum, ratioSum float64

	for qi := range qs {
		ids := make(map[int32]bool, k)
		for _, nb := range truth[qi] {
			ids[nb.ID] = true
		}
		hits := 0
		for _, r := range results[qi] {
			if ids[r.ID] {
				hits++
			}
		}
		recallSum += float64(hits) / k
		for i, r := range results[qi] {
			if truth[qi][i].Dist > 0 {
				ratioSum += r.Dist / truth[qi][i].Dist
			} else {
				ratioSum++
			}
		}
	}

	fmt.Printf("%-22s %v per query (brute force)\n", "exact search:", exactPerQuery.Round(time.Microsecond))
	fmt.Printf("%-22s %v per query\n", "PM-LSH search:", (annTime / queries).Round(time.Microsecond))
	fmt.Printf("%-22s %.0f points/query (exact per query)\n", "mean verified:", float64(verified)/queries)
	fmt.Printf("%-22s %.4f\n", "mean recall:", recallSum/queries)
	fmt.Printf("%-22s %.4f\n", "mean overall ratio:", ratioSum/float64(queries*k))
}
