// Quickstart: build a PM-LSH index over random high-dimensional points,
// answer a (c,k)-ANN request through the options-driven Search API,
// then exercise the mutation lifecycle — delete the returned neighbors,
// watch them vanish from the next query, and re-insert one under a
// fresh id.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	pmlsh "repro"
)

func main() {
	const (
		n = 10000 // points
		d = 128   // dimensions
		k = 5     // neighbors
		c = 1.5   // approximation ratio
	)

	// A toy dataset: Gaussian points around a handful of centers.
	rng := rand.New(rand.NewSource(1))
	centers := make([][]float64, 16)
	for i := range centers {
		centers[i] = randVec(rng, d, 10)
	}
	data := make([][]float64, n)
	for i := range data {
		center := centers[rng.Intn(len(centers))]
		p := make([]float64, d)
		for j := range p {
			p[j] = center[j] + rng.NormFloat64()
		}
		data[i] = p
	}

	// Build the index with the paper's default parameters
	// (m = 15 hash functions, s = 5 PM-tree pivots, α1 = 1/e).
	index, err := pmlsh.Build(data, pmlsh.Config{Seed: 42})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("indexed %d points in %d dimensions (projected to %d)\n",
		index.Len(), index.Dim(), index.M())

	// Query near one of the data points.
	query := append([]float64(nil), data[1234]...)
	query[0] += 0.25

	// One Search request: per-query ratio and a stats sink travel as
	// functional options; the context could carry a deadline.
	ctx := context.Background()
	var stats pmlsh.QueryStats
	neighbors, err := index.Search(ctx, query, k,
		pmlsh.WithRatio(c), pmlsh.WithStats(&stats))
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("\n(c=%.1f, k=%d)-ANN results:\n", c, k)
	for i, nb := range neighbors {
		fmt.Printf("  %d. point %-6d distance %.4f\n", i+1, nb.ID, nb.Dist)
	}
	fmt.Printf("\nquery work: %d range-query rounds, %d points verified (%.1f%% of the dataset)\n",
		stats.Rounds, stats.Verified, 100*float64(stats.Verified)/float64(n))

	// The index is mutable: Delete retires points in place (no rebuild),
	// and queries running concurrently never see them. Drop every
	// neighbor just returned and keep its vector for later.
	deleted := make(map[int32][]float64, len(neighbors))
	for _, nb := range neighbors {
		deleted[nb.ID] = append([]float64(nil), data[nb.ID]...)
		if err := index.Delete(nb.ID); err != nil {
			log.Fatalf("delete: %v", err)
		}
	}
	fmt.Printf("\ndeleted the %d results: %d ids assigned, %d live\n",
		len(neighbors), index.Len(), index.LiveLen())

	neighbors, err = index.Search(ctx, query, k, pmlsh.WithRatio(c))
	if err != nil {
		log.Fatalf("query after delete: %v", err)
	}
	fmt.Println("same query over the survivors:")
	for i, nb := range neighbors {
		if _, gone := deleted[nb.ID]; gone {
			log.Fatalf("deleted point %d resurfaced", nb.ID)
		}
		fmt.Printf("  %d. point %-6d distance %.4f\n", i+1, nb.ID, nb.Dist)
	}

	// Re-insert one deleted vector: it comes back under a fresh id (ids
	// are never reused) and immediately wins the query again.
	for oldID, p := range deleted {
		newID, err := index.Insert(p)
		if err != nil {
			log.Fatalf("insert: %v", err)
		}
		fmt.Printf("\nre-inserted former point %d as id %d\n", oldID, newID)
		break
	}
	neighbors, err = index.Search(ctx, query, 1, pmlsh.WithRatio(c))
	if err != nil {
		log.Fatalf("query after re-insert: %v", err)
	}
	fmt.Printf("nearest neighbor now: point %d at distance %.4f\n",
		neighbors[0].ID, neighbors[0].Dist)
}

func randVec(rng *rand.Rand, d int, scale float64) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64() * scale
	}
	return v
}
