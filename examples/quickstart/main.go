// Quickstart: build a PM-LSH index over random high-dimensional points
// and answer a (c,k)-ANN query.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	pmlsh "repro"
)

func main() {
	const (
		n = 10000 // points
		d = 128   // dimensions
		k = 5     // neighbors
		c = 1.5   // approximation ratio
	)

	// A toy dataset: Gaussian points around a handful of centers.
	rng := rand.New(rand.NewSource(1))
	centers := make([][]float64, 16)
	for i := range centers {
		centers[i] = randVec(rng, d, 10)
	}
	data := make([][]float64, n)
	for i := range data {
		center := centers[rng.Intn(len(centers))]
		p := make([]float64, d)
		for j := range p {
			p[j] = center[j] + rng.NormFloat64()
		}
		data[i] = p
	}

	// Build the index with the paper's default parameters
	// (m = 15 hash functions, s = 5 PM-tree pivots, α1 = 1/e).
	index, err := pmlsh.Build(data, pmlsh.Config{Seed: 42})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("indexed %d points in %d dimensions (projected to %d)\n",
		index.Len(), index.Dim(), index.M())

	// Query near one of the data points.
	query := append([]float64(nil), data[1234]...)
	query[0] += 0.25

	neighbors, stats, err := index.KNNWithStats(query, k, c)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("\n(c=%.1f, k=%d)-ANN results:\n", c, k)
	for i, nb := range neighbors {
		fmt.Printf("  %d. point %-6d distance %.4f\n", i+1, nb.ID, nb.Dist)
	}
	fmt.Printf("\nquery work: %d range-query rounds, %d points verified (%.1f%% of the dataset)\n",
		stats.Rounds, stats.Verified, 100*float64(stats.Verified)/float64(n))
}

func randVec(rng *rand.Rand, d int, scale float64) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64() * scale
	}
	return v
}
