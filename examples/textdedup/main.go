// Text near-duplicate detection over the MinHash Jaccard backend:
// documents become shingle sets (hashed word 3-grams → uint64 tokens),
// BuildSets indexes them under MetricJaccard, and one SearchPairs
// query surfaces every near-duplicate pair in the corpus — the banded
// signatures propose candidate pairs, the exact-Jaccard rescore keeps
// only real ones.
//
// The corpus is synthetic but adversarially shaped: a few thousand
// distinct "documents" plus planted near-duplicates (each an edited
// copy of some original — words swapped, dropped, or inserted, ~90%
// shingle overlap). The example asserts the planted pairs are found
// (≥ 95%), so it doubles as an executable quality gate for the
// Jaccard path.
//
// Run with: go run ./examples/textdedup
package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"strings"

	pmlsh "repro"
)

const (
	nDocs      = 1500 // distinct documents
	nDups      = 120  // planted near-duplicate copies
	docWords   = 120  // words per document
	vocabulary = 4000 // distinct words
	editProb   = 0.04 // per-word mutation rate for a duplicate
)

// shingles hashes every word 3-gram of doc to a uint64 token. Sets of
// shingles are what MinHash compares: two documents' Jaccard
// similarity over shingles tracks their textual overlap.
func shingles(words []string) []uint64 {
	if len(words) < 3 {
		return nil
	}
	out := make([]uint64, 0, len(words)-2)
	for i := 0; i+3 <= len(words); i++ {
		h := fnv.New64a()
		h.Write([]byte(strings.Join(words[i:i+3], " ")))
		out = append(out, h.Sum64())
	}
	return out
}

// synthDoc draws docWords words from a skewed vocabulary (Zipf-ish via
// squaring) so shingles repeat across documents like real text.
func synthDoc(rng *rand.Rand) []string {
	words := make([]string, docWords)
	for i := range words {
		u := rng.Float64()
		words[i] = fmt.Sprintf("w%d", int(u*u*vocabulary))
	}
	return words
}

// mutate edits a copy of doc: each word is dropped, duplicated, or
// replaced with probability editProb — the shape of a retyped or
// lightly revised document.
func mutate(doc []string, rng *rand.Rand) []string {
	out := make([]string, 0, len(doc)+8)
	for _, w := range doc {
		r := rng.Float64()
		switch {
		case r < editProb/3:
			// dropped
		case r < 2*editProb/3:
			out = append(out, w, w)
		case r < editProb:
			out = append(out, fmt.Sprintf("w%d", rng.Intn(vocabulary)))
		default:
			out = append(out, w)
		}
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(17))

	docs := make([][]string, nDocs)
	for i := range docs {
		docs[i] = synthDoc(rng)
	}
	// Plant near-duplicates: doc nDocs+j is an edited copy of original j.
	type plant struct{ orig, dup int32 }
	var planted []plant
	for j := 0; j < nDups; j++ {
		orig := rng.Intn(nDocs)
		docs = append(docs, mutate(docs[orig], rng))
		planted = append(planted, plant{orig: int32(orig), dup: int32(nDocs + j)})
	}

	sets := make([][]uint64, len(docs))
	for i, d := range docs {
		sets[i] = shingles(d)
	}
	fmt.Printf("corpus: %d documents (%d planted near-duplicates), ~%d shingles each\n",
		len(docs), nDups, docWords-2)

	index, err := pmlsh.BuildSets(sets, pmlsh.Config{
		Metric: pmlsh.MetricJaccard,
		Seed:   29,
		// Tune the banding to the duplicate threshold. A ~4% word-edit
		// rate leaves ~79% shingle similarity; 32 bands of 4 rows put
		// the collision-probability S-curve's steep part near s ≈ 0.5
		// (P = 1-(1-s^4)^32 ≈ 0.9998 at s = 0.7), versus only ~0.93 for
		// the 16×8 default, whose curve is centered for higher
		// similarities. Same 128-hash signature budget either way.
		MinHashBands: 32,
		MinHashRows:  4,
		// Post-filter: a pair only counts as a duplicate if its exact
		// Jaccard similarity clears 0.5 — banding proposes, the exact
		// rescore disposes.
		MinHashThreshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	info := index.Info()
	fmt.Printf("index: metric=%v ids=%d\n", info.Metric, info.IDs)

	// One closest-pair query over the whole corpus. Ask for more pairs
	// than were planted: unplanned shingle collisions can tie in.
	pairs, err := index.SearchPairs(context.Background(), nDups*2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SearchPairs returned %d candidate duplicate pairs\n", len(pairs))

	found := make(map[[2]int32]bool, len(pairs))
	for _, p := range pairs {
		found[[2]int32{p.I, p.J}] = true
	}
	hits := 0
	for _, pl := range planted {
		key := [2]int32{pl.orig, pl.dup}
		if pl.orig > pl.dup {
			key = [2]int32{pl.dup, pl.orig}
		}
		if found[key] {
			hits++
		}
	}
	rate := float64(hits) / float64(len(planted))
	fmt.Printf("planted near-duplicates found: %d/%d (%.1f%%)\n",
		hits, len(planted), 100*rate)
	for i, p := range pairs[:min(5, len(pairs))] {
		fmt.Printf("  top pair %d: docs %d & %d, jaccard distance %.3f\n", i+1, p.I, p.J, p.Dist)
	}

	if rate < 0.95 {
		log.Fatalf("FAIL: found %.1f%% of planted near-duplicates, need >= 95%%", 100*rate)
	}
	fmt.Println("PASS: >= 95% of planted near-duplicates recovered")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
