package pmlsh

// BenchmarkServerSearch measures end-to-end single-query latency
// through the HTTP serving layer (internal/server) — JSON decode,
// engine search, JSON encode, metrics middleware — over a loopback
// connection with keep-alive, next to the in-process benchmarks so the
// serving overhead is a visible line in the perf trajectory.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/wal"
)

func BenchmarkServerSearch(b *testing.B) {
	w := workload(b)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			eng, err := core.BuildEngine(w.Dataset.Points, core.Config{Seed: 5, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			srv, err := server.New(server.Config{
				Engine: eng,
				Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := ts.Client()

			bodies := make([][]byte, len(w.Queries))
			for i, q := range w.Queries {
				if bodies[i], err = json.Marshal(map[string]any{"q": q, "k": 50}); err != nil {
					b.Fatal(err)
				}
			}
			// Warm the connection so b.N=1 runs do not time a TCP dial.
			if err := postSearch(client, ts.URL, bodies[0]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := postSearch(client, ts.URL, bodies[i%len(bodies)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerSearchDurable is BenchmarkServerSearch/shards4 with
// write-ahead logging attached (group commit, everyN=8): the search
// path never touches the WAL, so comparing the two lines bounds the
// serving overhead the durability wiring itself adds.
func BenchmarkServerSearchDurable(b *testing.B) {
	w := workload(b)
	eng, err := core.BuildEngine(w.Dataset.Points, core.Config{Seed: 5, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.EnableDurability(wal.DirFS(b.TempDir()), wal.SyncPolicy{EveryN: 8}); err != nil {
		b.Fatal(err)
	}
	defer eng.CloseDurable()
	srv, err := server.New(server.Config{
		Engine: eng,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	bodies := make([][]byte, len(w.Queries))
	for i, q := range w.Queries {
		if bodies[i], err = json.Marshal(map[string]any{"q": q, "k": 50}); err != nil {
			b.Fatal(err)
		}
	}
	if err := postSearch(client, ts.URL, bodies[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := postSearch(client, ts.URL, bodies[i%len(bodies)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerInsertDurable measures the mutation path — where the
// WAL actually sits — through HTTP: in-memory baseline, fsync on every
// append, and group commit (everyN=8), making the durability tax and
// the group-commit recovery of it visible lines in the trajectory.
func BenchmarkServerInsertDurable(b *testing.B) {
	w := workload(b)
	for _, mode := range []struct {
		name   string
		policy *wal.SyncPolicy
	}{
		{name: "memory", policy: nil},
		{name: "fsyncAlways", policy: &wal.SyncPolicy{}},
		{name: "fsyncEvery8", policy: &wal.SyncPolicy{EveryN: 8}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng, err := core.BuildEngine(w.Dataset.Points, core.Config{Seed: 5, Shards: 4})
			if err != nil {
				b.Fatal(err)
			}
			if mode.policy != nil {
				if err := eng.EnableDurability(wal.DirFS(b.TempDir()), *mode.policy); err != nil {
					b.Fatal(err)
				}
				defer eng.CloseDurable()
			}
			srv, err := server.New(server.Config{
				Engine: eng,
				Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := ts.Client()

			bodies := make([][]byte, len(w.Dataset.Points))
			for i, p := range w.Dataset.Points {
				if bodies[i], err = json.Marshal(map[string]any{"p": p}); err != nil {
					b.Fatal(err)
				}
			}
			if err := postJSON(client, ts.URL+"/v1/insert", bodies[0]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := postJSON(client, ts.URL+"/v1/insert", bodies[i%len(bodies)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func postSearch(client *http.Client, baseURL string, body []byte) error {
	return postJSON(client, baseURL+"/v1/search", body)
}

func postJSON(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
