package pmlsh

// BenchmarkServerSearch measures end-to-end single-query latency
// through the HTTP serving layer (internal/server) — JSON decode,
// engine search, JSON encode, metrics middleware — over a loopback
// connection with keep-alive, next to the in-process benchmarks so the
// serving overhead is a visible line in the perf trajectory.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

func BenchmarkServerSearch(b *testing.B) {
	w := workload(b)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			eng, err := core.BuildEngine(w.Dataset.Points, core.Config{Seed: 5, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			srv, err := server.New(server.Config{
				Engine: eng,
				Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := ts.Client()

			bodies := make([][]byte, len(w.Queries))
			for i, q := range w.Queries {
				if bodies[i], err = json.Marshal(map[string]any{"q": q, "k": 50}); err != nil {
					b.Fatal(err)
				}
			}
			// Warm the connection so b.N=1 runs do not time a TCP dial.
			if err := postSearch(client, ts.URL, bodies[0]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := postSearch(client, ts.URL, bodies[i%len(bodies)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func postSearch(client *http.Client, baseURL string, body []byte) error {
	resp, err := client.Post(baseURL+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
