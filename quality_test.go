package pmlsh

// Recall / overall-ratio regression tests (the paper's two quality
// metrics, Eqs. 11-12), asserted against seeded brute-force ground
// truth so a regression in the query engine's quality — not just its
// latency — fails CI. Dataset sizes are -short-safe; the table is
// deterministic (fixed seeds throughout).

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/lscan"
	"repro/internal/metrics"
)

// uniformData draws n points uniformly from [0,1)^d — the hard,
// structure-free case for any sublinear method.
func uniformData(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		out[i] = p
	}
	return out
}

func TestRecallAndRatioRegression(t *testing.T) {
	type tc struct {
		name      string
		data      [][]float64
		queries   [][]float64
		k         int
		c         float64
		minRecall float64
	}
	var cases []tc

	// MNIST-like: the paper's Table 3 shape at a -short-safe scale.
	spec, err := dataset.SpecByName("MNIST", 0.02, 1200) // 1200 × 784
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tc{
		name: "MNIST-like", data: ds.Points, queries: ds.Queries(15, 7),
		k: 10, c: 1.5, minRecall: 0.8,
	})

	// Uniform: no cluster structure at all (d modest — with m = 15
	// projections, recall on structure-free uniform data degrades as d
	// grows; d = 32 keeps the test sharp without crossing into the
	// regime where the paper itself reports reduced recall).
	uni := uniformData(1500, 32, 9)
	uq := make([][]float64, 15)
	rng := rand.New(rand.NewSource(10))
	for i := range uq {
		src := uni[rng.Intn(len(uni))]
		q := make([]float64, len(src))
		for j, v := range src {
			q[j] = v + rng.NormFloat64()*0.01
		}
		uq[i] = q
	}
	cases = append(cases, tc{
		name: "uniform", data: uni, queries: uq,
		k: 10, c: 1.5, minRecall: 0.8,
	})

	// Quantized screening is reject-only, so every quality gate must
	// hold verbatim with a codec installed — run each case under all
	// three codec kinds against shared ground truth.
	quants := []struct {
		name string
		kind QuantKind
	}{{"none", QuantNone}, {"f32", QuantF32}, {"i8", QuantI8}}

	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			// Exact ground truth: a full-fraction linear scan.
			sc, err := lscan.New(tcase.data, lscan.Config{Fraction: 1.0, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			truths := make([][]metrics.Neighbor, len(tcase.queries))
			for qi, q := range tcase.queries {
				truthRaw, err := sc.KNN(q, tcase.k)
				if err != nil {
					t.Fatal(err)
				}
				truth := make([]metrics.Neighbor, len(truthRaw))
				for i, n := range truthRaw {
					truth[i] = metrics.Neighbor{ID: n.ID, Dist: n.Dist}
				}
				truths[qi] = truth
			}
			for _, qt := range quants {
				t.Run("quantize="+qt.name, func(t *testing.T) {
					ix, err := Build(tcase.data, Config{Seed: 3, Quantize: qt.kind})
					if err != nil {
						t.Fatal(err)
					}
					var recallSum, ratioSum float64
					for qi, q := range tcase.queries {
						truth := truths[qi]
						resRaw, err := ix.KNN(q, tcase.k, tcase.c)
						if err != nil {
							t.Fatal(err)
						}
						res := make([]metrics.Neighbor, len(resRaw))
						for i, n := range resRaw {
							res[i] = metrics.Neighbor{ID: n.ID, Dist: n.Dist}
						}
						recall, err := metrics.Recall(res, truth)
						if err != nil {
							t.Fatal(err)
						}
						ratio, err := metrics.OverallRatio(res, truth)
						if err != nil {
							t.Fatal(err)
						}
						// The per-query ratio must respect the c guarantee.
						if ratio > tcase.c+1e-9 {
							t.Errorf("per-query overall ratio %v exceeds c=%v", ratio, tcase.c)
						}
						recallSum += recall
						ratioSum += ratio
					}
					n := float64(len(tcase.queries))
					meanRecall, meanRatio := recallSum/n, ratioSum/n
					t.Logf("recall=%.3f ratio=%.4f over %d queries", meanRecall, meanRatio, len(tcase.queries))
					if meanRecall < tcase.minRecall {
						t.Errorf("mean recall %.3f below %.2f", meanRecall, tcase.minRecall)
					}
					if meanRatio > tcase.c {
						t.Errorf("mean overall ratio %.4f exceeds c=%v", meanRatio, tcase.c)
					}
				})
			}
		})
	}
}

// TestClosestPairsQualityRegression is the closest-pair analog: the
// i-th reported pair distance must be within factor c of the exact i-th
// closest pair distance on a seeded dataset.
func TestClosestPairsQualityRegression(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{
		Name: "cpq", N: 900, D: 64, Clusters: 30, SubspaceDim: 6, RCTarget: 2.5, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(ds.Points, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const k, c = 25, 1.5
	exact, err := lscan.ClosestPairs(ds.Points, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []bool{false, true} {
		var pairs []Pair
		if par {
			pairs, err = ix.ClosestPairsParallel(k, c)
		} else {
			pairs, err = ix.ClosestPairs(k, c)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != k {
			t.Fatalf("par=%v: got %d pairs, want %d", par, len(pairs), k)
		}
		for i, p := range pairs {
			if p.Dist > c*exact[i].Dist+1e-9 {
				t.Errorf("par=%v rank %d: %v exceeds c×exact %v", par, i, p.Dist, exact[i].Dist)
			}
		}
	}
}
