// Package pmlsh is a from-scratch Go implementation of PM-LSH, the
// locality-sensitive-hashing framework for high-dimensional approximate
// nearest-neighbor search of Zheng, Zhao, Weng, Hung, Liu and Jensen
// (PVLDB 13(5), 2020).
//
// PM-LSH answers (c,k)-ANN queries in sublinear time with a quality
// guarantee: it projects points into a low-dimensional space with
// 2-stable hash functions, indexes the projections with a PM-tree, and
// probes candidates through a short sequence of projected range queries
// whose radii come from a tunable χ² confidence interval. The returned
// top-k is c²-approximate with constant probability (Theorem 1 of the
// paper); in practice recall is high and the overall distance ratio is
// close to 1.
//
// # Quick start
//
//	data := ...                       // [][]float64, one row per point
//	index, err := pmlsh.Build(data, pmlsh.Config{})
//	if err != nil { ... }
//	neighbors, err := index.KNN(query, 10, 1.5) // (c=1.5, k=10)-ANN
//
// The zero Config uses the paper's evaluation defaults: m = 15 hash
// functions, s = 5 PM-tree pivots, α₁ = 1/e.
//
// # Storage layout
//
// Build copies the input rows once into a contiguous flat buffer (the
// internal vector store): every indexed point is a fixed-stride row of
// one []float64, and the PM-tree's leaves reference rows of a second
// store holding the projections. Candidate verification therefore
// streams sequential memory instead of chasing a pointer per point,
// compares squared distances with early abandonment against the
// running k-th best, and defers the k square roots to the end of the
// query.
//
// # Queries and concurrency
//
// KNN, KNNWithStats, KNNBatch and BallCover are safe for concurrent
// use; Insert is single-writer and must not overlap them. KNNBatch
// fans a query slice across a worker pool of up to GOMAXPROCS
// goroutines and returns per-query results in input order — the
// throughput-oriented entry point for serving many concurrent readers:
//
//	results, err := index.KNNBatch(queries, 10, 1.5)
//
// # Repository layout
//
// The exported API wraps internal/core. The repository also contains
// the full substrate stack (vector store, PM-tree, R-tree, B+-tree,
// p-stable LSH, χ² statistics) and every baseline from the paper's
// evaluation (SRS, QALSH, Multi-Probe LSH, R-LSH, linear scan) under
// internal/, along with a benchmark harness that regenerates each
// table and figure; see README.md for the layer diagram.
package pmlsh
