// Package pmlsh is a from-scratch Go implementation of PM-LSH, the
// locality-sensitive-hashing framework for high-dimensional approximate
// nearest-neighbor search of Zheng, Zhao, Weng, Hung, Liu and Jensen
// (PVLDB 13(5), 2020).
//
// PM-LSH answers (c,k)-ANN queries in sublinear time with a quality
// guarantee: it projects points into a low-dimensional space with
// 2-stable hash functions, indexes the projections with a PM-tree, and
// probes candidates through a short sequence of projected range queries
// whose radii come from a tunable χ² confidence interval. The returned
// top-k is c²-approximate with constant probability (Theorem 1 of the
// paper); in practice recall is high and the overall distance ratio is
// close to 1.
//
// # Quick start
//
//	data := ...                       // [][]float64, one row per point
//	index, err := pmlsh.Build(data, pmlsh.Config{})
//	if err != nil { ... }
//	neighbors, err := index.Search(ctx, query, 10) // (c=1.5, k=10)-ANN
//
// The zero Config uses the paper's evaluation defaults: m = 15 hash
// functions, s = 5 PM-tree pivots, α₁ = 1/e.
//
// # Request API
//
// Every query goes through one options-driven entry point per query
// family — Search (point ANN), SearchBatch (many point queries under
// one lock acquisition), SearchPairs (closest pairs), SearchBall
// (ball cover). Each takes a context plus functional options carrying
// the per-query request parameters:
//
//	WithRatio(c)          approximation ratio (default 1.5)
//	WithAlpha1(a)         per-query confidence width α₁ — widens or
//	                      narrows the projected search radius T
//	WithFilter(admit)     restrict results to admitted ids
//	WithBudget(n)         cap on admitted exact-distance verifications
//	WithStats(&st)        per-query work statistics (Search, SearchBall)
//	WithBatchStats(sts)   per-query statistics for SearchBatch
//	WithPairStats(&st)    statistics for SearchPairs
//	WithParallelVerify()  parallel pair verification (SearchPairs)
//
// Cancellation: every entry point honors its context. Search checks
// between range-expansion rounds, SearchBatch additionally between
// work items, SearchPairs between rounds and verification batches — a
// canceled request stops doing tree work, returns ctx.Err(), and
// leaves the index fully usable.
//
// Filter cost model: WithFilter is pushed into the verification loop,
// not applied to finished results. A filtered-out candidate costs one
// predicate call — no exact distance computation — and the candidate
// budget βn+k counts only admitted points, so the engine keeps
// expanding its radius until k admitted results are found (or the
// corpus is exhausted) instead of returning short. At s% selectivity a
// filtered query therefore verifies roughly s% of the candidates the
// unfiltered query would, while recall against the filtered ground
// truth stays at the unfiltered level. The predicate must be fast,
// side-effect free and safe for concurrent use; it only sees live ids.
//
// Migration from the fixed-signature methods (all still supported,
// element-wise identical):
//
//	index.KNN(q, k, c)               -> index.Search(ctx, q, k, WithRatio(c))
//	index.KNNWithStats(q, k, c)      -> index.Search(ctx, q, k, WithRatio(c), WithStats(&st))
//	index.KNNBatch(qs, k, c)         -> index.SearchBatch(ctx, qs, k, WithRatio(c))
//	index.BallCover(q, r, c)         -> index.SearchBall(ctx, q, r, WithRatio(c))
//	index.ClosestPairs(k, c)         -> index.SearchPairs(ctx, k, WithRatio(c))
//	index.ClosestPairsWithStats(k,c) -> index.SearchPairs(ctx, k, WithRatio(c), WithPairStats(&st))
//	index.ClosestPairsParallel(k, c) -> index.SearchPairs(ctx, k, WithRatio(c), WithParallelVerify())
//
// # Metrics
//
// The engine is natively Euclidean, and Config.Metric extends it to
// three more measures over the same index, serving and durability
// stack. Cosine and inner product are reductions to L2 performed at
// ingest; Jaccard swaps in a MinHash band-LSH backend behind the same
// query seam:
//
//	MetricL2 (default)  ‖q−x‖; the native engine, byte-identical to
//	                    earlier versions on disk and in answers
//	MetricCosine        1 − cos θ ∈ [0, 2]; rows and queries are
//	                    normalized once, then ‖q−x‖²/2 = 1 − cos θ,
//	                    so the reduction is an isometry and the
//	                    c-guarantee transfers (c² in 1 − cos θ)
//	MetricInnerProduct  −⟨q,x⟩ (more similar = smaller); augmented
//	                    dimension x → [x/S, √(1−‖x/S‖²)] with S the
//	                    max build norm, q → [q/‖q‖, 0]. A heuristic
//	                    reduction — the transform compresses top-rank
//	                    contrast, so the default radius schedule
//	                    widens (DefaultMIPAlpha1) and the equivalence
//	                    suite pins recall ≥ 0.8 vs brute force
//	MetricJaccard       1 − |A∩B|/|A∪B| over sets of uint64 tokens
//	                    (BuildSets; queries pass tokens as floats).
//	                    MinHash signatures of MinHashBands × MinHashRows
//	                    hashes; a pair with similarity s becomes a
//	                    candidate with probability 1 − (1 − s^r)^b, and
//	                    every candidate is rescored with its exact
//	                    Jaccard distance, so banding affects recall
//	                    only — reported distances are always exact.
//	                    MinHashThreshold post-filters by similarity.
//
// Reported distances are always native to the metric. The χ²
// confidence-interval machinery (DeriveParams, α₁/α₂/β derivation)
// is internal to the L2 reduction: it applies unchanged under cosine
// and inner product and does not exist for Jaccard, where
// DeriveParams and SetQuantize return errors. SearchBall takes a
// native radius for cosine and is rejected for inner product;
// SearchPairs is rejected for inner product (a closest "pair" has no
// meaning when similarity is query-relative). Serialized non-L2
// indexes carry a metric tag (PLS6 envelope); L2 keeps the exact
// earlier byte format and v1–v5 streams load as L2. See the README's
// Metrics section for the reduction table and b × r tuning guidance.
//
// # Storage layout
//
// Build copies the input rows once into a contiguous flat buffer (the
// internal vector store): every indexed point is a fixed-stride row of
// one []float64, and the PM-tree's leaves reference rows of a second
// store holding the projections. Candidate verification therefore
// streams sequential memory instead of chasing a pointer per point,
// compares squared distances with early abandonment against the
// running k-th best, and defers the k square roots to the end of the
// query. The PM-tree itself is bulk loaded — metric-local leaves
// packed by recursive bisection, upper levels assembled bottom-up with
// exact radii and rings — which tightens the pruning bounds every
// query path depends on.
//
// # Closest-pair search
//
// The journal extension of PM-LSH generalizes the framework from
// (c,k)-ANN to (c,k)-approximate closest-pair search: find k pairs of
// indexed points such that, with constant probability, the i-th
// returned distance is within factor c of the exact i-th closest pair
// distance. ClosestPairs runs a dual-branch self-join traversal over
// the PM-tree in projected space, enumerating candidate pairs in
// increasing projected distance, verifying them with exact distances
// in the contiguous store, and terminating on the confidence-interval
// radius condition:
//
//	pairs, err := index.ClosestPairs(10, 1.5) // 10 closest pairs, ratio 1.5
//
// ClosestPairsParallel fans pair verification across a GOMAXPROCS
// worker pool. De-duplicating a corpus is the canonical use — the
// near-copies are exactly the closest pairs (see examples/dedup). The
// R-tree ablation (Config.UseRTree) does not support the self-join.
//
// # Mutation lifecycle
//
// The index is mutable in place — the serving loop of insert, delete,
// query and compact needs no rebuilds and no downtime:
//
//	id, err := index.Insert(point) // fresh id from a monotone counter
//	err = index.Delete(id)         // retires the id, tombstones the row
//	err = index.Compact()          // repacks storage, re-bulk-loads the tree
//	index.Len()                    // ids ever assigned
//	index.LiveLen()                // live points
//	index.IsLive(id)               // per-id liveness
//
// Ids are stable: they are never reused and never remapped, not by
// Delete and not by Compact, so an id a caller holds refers to the
// same point for the index's lifetime. Delete removes the point's
// entry from the projected-space tree physically (covering radii stay
// conservative) and tombstones its row in the vector store; the slot
// is recycled by a later Insert, so sustained churn does not grow
// memory. Queries never return a deleted point.
//
// Deletions leave the tree's covering regions looser than a fresh
// build would make them, so query cost creeps up under heavy churn.
// Compact — called explicitly, or automatically once the tombstoned
// share of the store reaches Config.AutoCompactFraction (default 0.3;
// negative disables; the AutoCompactAlways sentinel compacts on every
// tombstone) — rebuilds via the bulk loader over exactly the live
// set, restoring fresh-build query cost. Serialization (WriteTo/Load)
// persists the full lifecycle state: tombstones, retired ids and the
// slot-recycling order; streams from earlier versions still load.
//
// # Query engine
//
// Algorithm 2 of the paper probes candidates with projected range
// queries of geometrically growing radius (r ← c·r). The engine runs
// that loop on a resumable range-expansion frontier: the first round
// expands a frontier over the projected tree to the initial radius,
// freezing every subtree and leaf entry whose lower bound exceeds it,
// and every later round thaws exactly the frontier entries that
// entered the enlarged radius. No round re-descends from the root or
// re-materializes previously seen candidates — each projected point
// (and each routing-object distance) is visited once per query, not
// once per round. Per-query state is pooled, so a steady-state KNN
// call allocates only its k-result output slice (2 allocations
// total). Both tree backends implement the contract, and answers are
// element-wise identical to the round-restarting formulation (the
// equivalence suite pins this); only the work counters shrink. See
// README.md ("Performance") for the measured trajectory and the
// BENCH_*.json format it is recorded in.
//
// # Distance kernels and quantized screening
//
// The hot distance kernels (exact, early-abandoning, one-against-many
// and dot product) dispatch to AVX2 assembly on amd64 CPUs that
// support it, selected once at startup; the portable Go fallbacks are
// bit-identical — same accumulation order, no FMA contraction — so
// results do not depend on the backend. Build with -tags noasm to
// force the fallbacks.
//
// Config.Quantize (QuantF32 or QuantI8) adds a scalar-quantized
// sidecar to the vector store and screens verification candidates
// with a provable lower bound computed from the compact codes: a
// candidate is skipped only when the bound already exceeds the
// current k-th best distance, so results, statistics and the (c,k)
// guarantee are element-wise identical to an unquantized index —
// screening only saves full-precision row accesses. The rejected
// count is reported per query as QueryStats.Screened. Screening pays
// when the dataset is much larger than the CPU cache (an i8 code row
// is 8x smaller than its f64 row); on cache-resident data it is
// neutral. SetQuantize installs or drops the codec on a live index,
// and Compact refits the i8 parameter range to the live points.
// Serialized indexes (WriteTo/Load) carry the codec parameters;
// codes are re-derived on load, bit-identically.
//
// # Queries, shards and snapshot isolation
//
// Every method is safe for concurrent use, and reads are snapshot
// isolated: queries — Search, SearchBatch, SearchPairs, SearchBall and
// the legacy shims — pin an atomically published snapshot of each
// shard and answer from it, so they never wait on a mutation, never
// wait on each other, and never observe a mutation half-applied. A
// point whose Delete completed before the query began can never appear
// in its results. Insert, Delete and Compact apply to a standby
// replica and swap it in with one atomic store; mutations to the same
// shard serialize, mutations to different shards run concurrently.
// The practical consequence is read tail latency: with the former
// reader/writer lock a query arriving during a Compact waited the
// whole rebuild out, while here it reads the outgoing snapshot and
// p99 stays at ordinary query time (see BenchmarkMixedReadP99 — more
// than an order of magnitude on the reference workload).
//
// Config.Shards picks the partition count. The default (0 or 1) keeps
// one shard and answers element-wise identically to earlier versions.
// N > 1 stripes ids across N independent partitions (global id g lives
// on shard g mod N), spreads mutation load, and fans each query out
// over all shards, merging per-shard answers; quality gates (recall,
// ratio) hold because every shard runs the full PM-LSH machinery over
// its slice with its own β·n/N budget. The cost is memory: each shard
// keeps two full replicas of its slice, so the index holds 2× the
// dataset regardless of N. Use Shards > 1 when mutation throughput or
// per-shard compaction pauses matter; a read-only or read-mostly index
// gains nothing from N > 1 (reads already never block), so leave the
// default.
//
// SearchBatch fans a query slice across a worker pool of up to
// GOMAXPROCS goroutines and returns per-query results in input order —
// the throughput-oriented entry point for serving many concurrent
// readers; on any non-nil error its result slice is nil, never a
// partially filled batch:
//
//	results, err := index.SearchBatch(ctx, queries, 10)
//
// Per-query statistics (WithStats, WithBatchStats, WithPairStats) are
// exact for the query they describe, ProjectedDistComps included: each
// query's range enumerator counts its own projected-space metric
// evaluations, so overlapping queries never pollute one another's
// counters. With Shards > 1 the counters are summed across the shards
// a query touched (FinalRadius reports the largest per-shard radius).
//
// # Serving
//
// The engine runs as a network service: `pmlsh serve` (cmd/pmlsh) puts
// a sharded index behind an HTTP/JSON API (internal/server) exposing
// the full request API — per-request ratio/α₁/budget and a timeout_ms
// that becomes a context deadline — plus insert/delete/compact,
// health and readiness probes, Prometheus-text metrics with structured
// request logging (internal/obs), graceful drain on SIGTERM (readiness
// fails, in-flight requests finish, a final checkpoint is written),
// and crash-safe temp-file+rename checkpoints. cmd/pmlshload generates
// sustained open-loop traffic against it and scores achieved recall
// with a brute-force oracle; the build-tagged soak suite
// (internal/server) asserts recall, tail latency, zero 5xx and clean
// drain under an hour-scale mutating workload. Everything is standard
// library — no dependencies. See the README's Serving section for the
// endpoint table and a curl session.
//
// # Durability
//
// With `pmlsh serve -data-dir`, the engine is backed by a write-ahead
// log (internal/wal): every mutation — insert, delete, compact,
// codec change — is appended to a CRC-framed segment file and fsynced
// under the -fsync policy (always, everyN=<n> group commit, or
// interval=<duration>) before it is applied in memory, so a mutation
// whose call returned is in the durable log. Reopening the directory
// recovers: load the newest checkpoint, replay the newer segments —
// repairing a torn tail left by a crash mid-write — and serve.
// Corruption anywhere before the tail is a hard error, never a silent
// skip. Background checkpoints (-checkpoint-interval) rotate the log
// and bound replay time; the listener binds before recovery so
// /healthz answers immediately while /readyz serves 503 until replay
// completes. The fault-injection suite (wal.Injector) kills the
// engine at hundreds of randomized write/fsync boundaries — including
// torn writes the kernel acknowledged but never persisted — and
// asserts no acknowledged mutation is lost, nothing half-applied
// resurfaces, and query quality holds after recovery. See the
// README's Durability section for the format and a runbook.
//
// # Repository layout
//
// The exported API wraps internal/core. The repository also contains
// the full substrate stack (vector store, PM-tree, R-tree, B+-tree,
// p-stable LSH, χ² statistics) and every baseline from the paper's
// evaluation (SRS, QALSH, Multi-Probe LSH, R-LSH, linear scan) under
// internal/, along with a benchmark harness that regenerates each
// table and figure; see README.md for the layer diagram.
package pmlsh
