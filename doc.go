// Package pmlsh is a from-scratch Go implementation of PM-LSH, the
// locality-sensitive-hashing framework for high-dimensional approximate
// nearest-neighbor search of Zheng, Zhao, Weng, Hung, Liu and Jensen
// (PVLDB 13(5), 2020).
//
// PM-LSH answers (c,k)-ANN queries in sublinear time with a quality
// guarantee: it projects points into a low-dimensional space with
// 2-stable hash functions, indexes the projections with a PM-tree, and
// probes candidates through a short sequence of projected range queries
// whose radii come from a tunable χ² confidence interval. The returned
// top-k is c²-approximate with constant probability (Theorem 1 of the
// paper); in practice recall is high and the overall distance ratio is
// close to 1.
//
// # Quick start
//
//	data := ...                       // [][]float64, one row per point
//	index, err := pmlsh.Build(data, pmlsh.Config{})
//	if err != nil { ... }
//	neighbors, err := index.KNN(query, 10, 1.5) // (c=1.5, k=10)-ANN
//
// The zero Config uses the paper's evaluation defaults: m = 15 hash
// functions, s = 5 PM-tree pivots, α₁ = 1/e.
//
// # Repository layout
//
// The exported API wraps internal/core. The repository also contains
// the full substrate stack (PM-tree, R-tree, B+-tree, p-stable LSH, χ²
// statistics) and every baseline from the paper's evaluation (SRS,
// QALSH, Multi-Probe LSH, R-LSH, linear scan) under internal/, along
// with a benchmark harness that regenerates each table and figure; see
// DESIGN.md and EXPERIMENTS.md.
package pmlsh
