package pmlsh

// Randomized equivalence suites for the reduced vector metrics: the
// index's cosine and inner-product answers are scored against a
// native-metric brute-force oracle — recall ≥ 0.8 on embedding-shaped
// data (d ≥ 256), per-rank native ratios reported — across both tree
// backends, Shards ∈ {1, 4}, and under churn. Plus the Jaccard
// public-API suite against an exact set-similarity oracle.

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// embeddingData generates d=256 clustered vectors — the shape dense
// text/image embeddings take, which is what the reduced metrics are
// for.
func embeddingData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "embed", N: n, D: 256, Clusters: 10, SubspaceDim: 12, RCTarget: 2.0, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// nativeVectorDist is the oracle's exact native distance.
func nativeVectorDist(m Metric, q, p []float64) float64 {
	var dot, nq, np float64
	for i := range q {
		dot += q[i] * p[i]
		nq += q[i] * q[i]
		np += p[i] * p[i]
	}
	switch m {
	case MetricCosine:
		return 1 - dot/(math.Sqrt(nq)*math.Sqrt(np))
	case MetricInnerProduct:
		return -dot
	}
	panic("no native distance for " + m.String())
}

// nativeTopK brute-forces the k nearest live ids under m.
func nativeTopK(m Metric, live map[int32][]float64, q []float64, k int) []Neighbor {
	all := make([]Neighbor, 0, len(live))
	for id, p := range live {
		all = append(all, Neighbor{ID: id, Dist: nativeVectorDist(m, q, p)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// runVectorMetricEquiv scores index answers against the native oracle
// and returns the mean recall plus the worst per-rank native ratio
// (answer dist vs oracle dist at the same rank, shifted to be
// scale-free for inner product).
func runVectorMetricEquiv(t *testing.T, ix *Index, m Metric, live map[int32][]float64, queries [][]float64, k int) (float64, float64) {
	t.Helper()
	var recallSum float64
	worstRatio := 1.0
	for _, q := range queries {
		truth := nativeTopK(m, live, q, k)
		res, err := ix.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(truth) {
			t.Fatalf("answered %d results, oracle has %d", len(res), len(truth))
		}
		truthIDs := make(map[int32]bool, len(truth))
		for _, n := range truth {
			truthIDs[n.ID] = true
		}
		hits := 0
		for i, n := range res {
			if truthIDs[n.ID] {
				hits++
			}
			// Reported distances must be the exact native distance of
			// the returned point, whatever its rank.
			want := nativeVectorDist(m, q, live[n.ID])
			if math.Abs(n.Dist-want) > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("id %d: reported dist %v, native %v", n.ID, n.Dist, want)
			}
			// Per-rank native ratio vs the oracle's i-th distance. Both
			// metrics order by a value that can be ≤ 0, so compare via
			// the gap to the oracle's best (rank-0) distance.
			gap := n.Dist - truth[0].Dist
			oracleGap := truth[i].Dist - truth[0].Dist
			if oracleGap > 1e-12 {
				if r := gap / oracleGap; r > worstRatio {
					worstRatio = r
				}
			}
		}
		recallSum += float64(hits) / float64(len(truth))
	}
	return recallSum / float64(len(queries)), worstRatio
}

func testVectorMetric(t *testing.T, m Metric) {
	ds := embeddingData(t, 1500)
	queries := ds.Queries(25, 91)
	k := 10
	for _, tc := range []struct {
		name   string
		cfg    Config
		minRec float64
	}{
		{"pmtree-1shard", Config{Seed: 5, Metric: m}, 0.8},
		{"pmtree-4shards", Config{Seed: 5, Metric: m, Shards: 4}, 0.8},
		{"rtree-1shard", Config{Seed: 5, Metric: m, UseRTree: true}, 0.8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix, err := Build(ds.Points, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ix.Metric() != m || ix.Dim() != 256 {
				t.Fatalf("accessors: metric %v dim %d", ix.Metric(), ix.Dim())
			}
			live := make(map[int32][]float64, len(ds.Points))
			for i, p := range ds.Points {
				live[int32(i)] = p
			}
			recall, ratio := runVectorMetricEquiv(t, ix, m, live, queries, k)
			t.Logf("%s %s: recall@%d=%.3f worst per-rank native ratio=%.3f", m, tc.name, k, recall, ratio)
			if recall < tc.minRec {
				t.Errorf("recall %.3f below %.2f", recall, tc.minRec)
			}
		})
	}
}

func TestCosineEquivalence(t *testing.T)       { testVectorMetric(t, MetricCosine) }
func TestInnerProductEquivalence(t *testing.T) { testVectorMetric(t, MetricInnerProduct) }

// testVectorMetricChurn replays deletes and inserts against both the
// index and the oracle's live map, then re-scores recall.
func testVectorMetricChurn(t *testing.T, m Metric) {
	ds := embeddingData(t, 1200)
	ix, err := Build(ds.Points, Config{Seed: 5, Metric: m, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[int32][]float64, len(ds.Points))
	for i, p := range ds.Points {
		live[int32(i)] = p
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 200; i++ {
		// Duplicate ids error and change nothing on either side.
		_ = ix.Delete(int32(rng.Intn(1200)))
	}
	// Re-sync the oracle with the index's ground-truth live set.
	for id := range live {
		if !ix.IsLive(id) {
			delete(live, id)
		}
	}
	for i := 0; i < 150; i++ {
		base := ds.Points[rng.Intn(1200)]
		p := make([]float64, len(base))
		for j := range p {
			p[j] = base[j] + 0.02*rng.NormFloat64()
		}
		id, err := ix.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		live[id] = p
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	recall, ratio := runVectorMetricEquiv(t, ix, m, live, ds.Queries(20, 93), 10)
	t.Logf("%s churn: recall@10=%.3f worst per-rank native ratio=%.3f", m, recall, ratio)
	if recall < 0.8 {
		t.Errorf("churned recall %.3f below 0.8", recall)
	}
}

func TestCosineEquivalenceChurn(t *testing.T)       { testVectorMetricChurn(t, MetricCosine) }
func TestInnerProductEquivalenceChurn(t *testing.T) { testVectorMetricChurn(t, MetricInnerProduct) }

// jaccardCorpus plants clustered sets: nBase bases, each with variants
// sharing ~90% of tokens.
func jaccardCorpus(nBase, variants, setLen int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	var sets [][]uint64
	for b := 0; b < nBase; b++ {
		base := make([]uint64, setLen)
		for i := range base {
			base[i] = uint64(rng.Intn(1 << 20))
		}
		sets = append(sets, base)
		for v := 1; v < variants; v++ {
			variant := append([]uint64(nil), base...)
			for i := range variant {
				if rng.Float64() < 0.1 {
					variant[i] = uint64(rng.Intn(1 << 20))
				}
			}
			sets = append(sets, variant)
		}
	}
	return sets
}

func exactJaccard(a, b []uint64) float64 {
	as := make(map[uint64]bool, len(a))
	for _, t := range a {
		as[t] = true
	}
	bs := make(map[uint64]bool, len(b))
	inter := 0
	for _, t := range b {
		if !bs[t] {
			bs[t] = true
			if as[t] {
				inter++
			}
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func setAsFloats(set []uint64) []float64 {
	out := make([]float64, len(set))
	for i, tok := range set {
		out[i] = float64(tok)
	}
	return out
}

func TestJaccardSearch(t *testing.T) {
	sets := jaccardCorpus(60, 5, 40, 55)
	for _, shards := range []int{1, 4} {
		ix, err := BuildSets(sets, Config{Metric: MetricJaccard, Seed: 55, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if ix.Metric() != MetricJaccard || ix.Len() != len(sets) {
			t.Fatalf("accessors: metric %v len %d", ix.Metric(), ix.Len())
		}
		found := 0
		for qi := 0; qi < 60; qi++ {
			q := qi * 5 // each cluster's base set
			res, err := ix.Search(context.Background(), setAsFloats(sets[q]), 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) == 0 || res[0].ID != int32(q) || res[0].Dist != 0 {
				t.Fatalf("shards=%d query %d: self not first: %+v", shards, q, res)
			}
			// Reported distances must equal the exact Jaccard distance,
			// and ranks must be sorted.
			for i, n := range res {
				want := 1 - exactJaccard(sets[q], sets[n.ID])
				if math.Abs(n.Dist-want) > 1e-12 {
					t.Fatalf("id %d: reported %v, exact %v", n.ID, n.Dist, want)
				}
				if i > 0 && n.Dist < res[i-1].Dist {
					t.Fatalf("unsorted results: %+v", res)
				}
			}
			// The cluster's variants are the true near neighbors; banding
			// at the default 16×8 should surface most of them.
			for _, n := range res[1:] {
				if int(n.ID) > q && int(n.ID) < q+5 {
					found++
				}
			}
		}
		// 60 clusters × up to 4 variants each; require most retrieved.
		if found < 150 {
			t.Errorf("shards=%d: only %d/240 planted variants retrieved", shards, found)
		}
		t.Logf("shards=%d: %d/240 planted variants retrieved", shards, found)
	}
}

func TestJaccardSearchPairsDedup(t *testing.T) {
	sets := jaccardCorpus(30, 4, 32, 59)
	for _, shards := range []int{1, 4} {
		ix, err := BuildSets(sets, Config{Metric: MetricJaccard, Seed: 59, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := ix.SearchPairs(context.Background(), 25)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) == 0 {
			t.Fatalf("shards=%d: no pairs found in a planted-cluster corpus", shards)
		}
		seen := map[[2]int32]bool{}
		for i, p := range pairs {
			if p.I >= p.J {
				t.Fatalf("pair %d not ordered: %+v", i, p)
			}
			key := [2]int32{p.I, p.J}
			if seen[key] {
				t.Fatalf("duplicate pair %+v", p)
			}
			seen[key] = true
			want := 1 - exactJaccard(sets[p.I], sets[p.J])
			if math.Abs(p.Dist-want) > 1e-12 {
				t.Fatalf("pair %+v: exact distance %v", p, want)
			}
			if i > 0 && p.Dist < pairs[i-1].Dist {
				t.Fatalf("unsorted pairs: %+v", pairs)
			}
			// Every strong pair should be within a planted cluster.
			if p.Dist < 0.3 && p.I/4 != p.J/4 {
				t.Fatalf("cross-cluster pair %+v closer than any plant should allow", p)
			}
		}
	}
}

func TestJaccardChurnAndThreshold(t *testing.T) {
	sets := jaccardCorpus(20, 4, 24, 61)
	ix, err := BuildSets(sets, Config{
		Metric: MetricJaccard, Seed: 61, MinHashThreshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The threshold post-filter: every answer must have similarity
	// ≥ 0.5, i.e. distance ≤ 0.5.
	res, err := ix.Search(context.Background(), setAsFloats(sets[0]), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res {
		if n.Dist > 0.5 {
			t.Fatalf("threshold 0.5 leaked distance %v", n.Dist)
		}
	}
	// Churn: delete a base set, insert a near-duplicate of another.
	if err := ix.Delete(0); err != nil {
		t.Fatal(err)
	}
	if ix.IsLive(0) || ix.LiveLen() != len(sets)-1 {
		t.Fatalf("delete not visible: live=%d", ix.LiveLen())
	}
	dup := append([]uint64(nil), sets[4]...)
	dup[0]++ // near-duplicate of base set 4
	id, err := ix.Insert(setAsFloats(dup))
	if err != nil {
		t.Fatal(err)
	}
	res, err = ix.Search(context.Background(), setAsFloats(dup), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != id {
		t.Fatalf("inserted set not its own nearest neighbor: %+v", res)
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	res2, err := ix.Search(context.Background(), setAsFloats(dup), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != len(res) || res2[0] != res[0] {
		t.Fatalf("answers changed across Compact: %+v vs %+v", res2, res)
	}
	// Deleted ids never come back.
	for _, n := range res2 {
		if n.ID == 0 {
			t.Fatal("deleted id returned")
		}
	}
}

func TestJaccardBatchAndFilter(t *testing.T) {
	sets := jaccardCorpus(15, 4, 20, 67)
	ix, err := BuildSets(sets, Config{Metric: MetricJaccard, Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	qs := [][]float64{setAsFloats(sets[0]), setAsFloats(sets[5])}
	batch, err := ix.SearchBatch(context.Background(), qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		solo, err := ix.Search(context.Background(), q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(solo) != len(batch[i]) {
			t.Fatalf("query %d: batch %d results, solo %d", i, len(batch[i]), len(solo))
		}
		for j := range solo {
			if solo[j] != batch[i][j] {
				t.Fatalf("query %d rank %d: batch %+v, solo %+v", i, j, batch[i][j], solo[j])
			}
		}
	}
	// A filter that bans the self-match must produce a different top-1.
	res, err := ix.Search(context.Background(), setAsFloats(sets[0]), 3,
		WithFilter(func(id int32) bool { return id != 0 }))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res {
		if n.ID == 0 {
			t.Fatalf("filtered id returned: %+v", res)
		}
	}
}

// TestVectorMetricSerializeRoundTrip runs the public WriteTo/Load
// round trip per metric and requires element-wise identical answers.
func TestVectorMetricSerializeRoundTrip(t *testing.T) {
	ds := testData(t, 400)
	for _, m := range []Metric{MetricCosine, MetricInnerProduct} {
		ix, err := Build(ds.Points, Config{Seed: 3, Metric: m, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Metric() != m {
			t.Fatalf("loaded metric %v, want %v", got.Metric(), m)
		}
		q := ds.Points[9]
		want, err := ix.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(have) {
			t.Fatalf("%v: loaded answers %d results, original %d", m, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("%v rank %d: loaded %+v, original %+v", m, i, have[i], want[i])
			}
		}
	}
}
